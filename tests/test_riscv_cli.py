"""CLI and public-API coverage for the RISC-V frontend: ``run
--riscv FILE``, ``suite --suite NAME``, and the ``conformance``
subcommand."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.workloads import RISCV_BENCHMARKS

REPO_ROOT = Path(__file__).parent.parent
HAZARD_HEX = REPO_ROOT / "examples" / "hazard.hex"
FIXTURE_HEX = REPO_ROOT / "tests" / "data" / "riscv" / "stl_hazard.hex"


class TestApi:
    def test_simulate_riscv_returns_a_record(self):
        record = api.simulate_riscv(FIXTURE_HEX)
        assert record.instructions == 17
        assert record.cycles > 0
        assert 0 < record.ipc <= 1
        json.loads(record.to_json())

    def test_simulate_riscv_resolves_config_names(self):
        record = api.simulate_riscv(FIXTURE_HEX, "baseline-lsq")
        assert "lsq" in record.config_name

    def test_run_riscv_conformance(self):
        report = api.run_riscv_conformance(configs=["baseline-sfc-mdt"])
        assert report.ok
        assert len(report.oracle) == len(RISCV_BENCHMARKS)

    def test_list_suites_and_frontends(self):
        assert "riscv-conformance" in api.list_suites()
        assert api.list_frontends() == ["native", "riscv"]

    def test_rv_benchmarks_listed_separately(self):
        # The RV32 corpus must never leak into ALL_BENCHMARKS: the
        # pinned figure-grid digest is computed over ALL_BENCHMARKS.
        assert not (set(RISCV_BENCHMARKS) & set(api.list_benchmarks()))


class TestRunRiscv:
    def test_quickstart_example(self, capsys):
        # The README quickstart: repro run --riscv examples/hazard.hex
        assert main(["run", "--riscv", str(HAZARD_HEX)]) == 0
        out = capsys.readouterr().out
        assert "riscv-hazard" in out
        assert "IPC" in out

    def test_json_output(self, capsys):
        assert main(["run", "--riscv", str(FIXTURE_HEX),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "riscv-stl_hazard"
        assert payload["instructions"] == 17

    def test_missing_benchmark_and_riscv_rejected(self, capsys):
        assert main(["run"]) == 2
        assert "--riscv" in capsys.readouterr().err

    def test_benchmark_plus_riscv_rejected(self, capsys):
        assert main(["run", "gzip", "--riscv", str(HAZARD_HEX)]) == 2
        assert "one or the other" in capsys.readouterr().err

    def test_unreadable_image_exits_with_message(self, capsys):
        assert main(["run", "--riscv", "/no/such/file.hex"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_image_exits_with_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.hex"
        bad.write_text("zzzz\n")
        assert main(["run", "--riscv", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_riscv_excludes_multicore_and_sampling(self, capsys):
        assert main(["run", "--riscv", str(HAZARD_HEX),
                     "--cores", "2"]) == 2
        assert main(["run", "--riscv", str(HAZARD_HEX),
                     "--sample-intervals", "3"]) == 2

    def test_rv_benchmark_name_accepted(self, capsys, tmp_path):
        assert main(["run", "rv-stl_hazard", "--no-cache",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "rv-stl_hazard" in capsys.readouterr().out


class TestConformanceCommand:
    def test_text_report_and_exit_code(self, capsys):
        assert main(["conformance",
                     "--configs", "baseline-sfc-mdt"]) == 0
        out = capsys.readouterr().out
        assert "riscv conformance" in out
        assert "identical to the interpreter oracle" in out

    def test_json_report_and_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "conformance_manifest.json"
        assert main(["conformance", "--configs", "baseline-sfc-mdt",
                     "--manifest", str(manifest),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "conformance"
        assert payload["ok"] is True
        assert payload["geo_mean_ipc"]
        records = json.loads(manifest.read_text())
        assert len(records) == len(RISCV_BENCHMARKS)
        assert {record["benchmark"] for record in records} == \
            set(RISCV_BENCHMARKS)


class TestSuiteFlag:
    def test_suite_and_benchmarks_mutually_exclusive(self, capsys,
                                                     tmp_path):
        assert main(["suite", "--suite", "riscv-conformance",
                     "--benchmarks", "gzip",
                     "--manifest", str(tmp_path / "m.json")]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_riscv_suite_through_the_engine(self, capsys, tmp_path):
        manifest = tmp_path / "suite.json"
        assert main(["suite", "--suite", "riscv-conformance",
                     "--configs", "baseline-sfc-mdt",
                     "--manifest", str(manifest), "--no-cache",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        entries = json.loads(manifest.read_text())
        assert {entry["benchmark"] for entry in entries} == \
            set(RISCV_BENCHMARKS)
        assert all(entry["status"] == "ok" for entry in entries)

    def test_list_shows_riscv_namespaces(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "riscv" in payload["frontends"]
        assert "riscv-conformance" in payload["suites"]
        assert set(payload["riscv_benchmarks"]) == set(RISCV_BENCHMARKS)
