"""Unit tests for the gshare + oracle branch predictor."""

from repro.branch import GsharePredictor


class TestGshare:
    def test_learns_always_taken(self):
        bp = GsharePredictor()
        pc = 0x40
        for _ in range(8):
            predicted = bp.predict(pc)
            bp.update(pc, True, predicted)
        assert bp.predict(pc)

    def test_learns_always_not_taken(self):
        bp = GsharePredictor()
        pc = 0x40
        for _ in range(8):
            predicted = bp.predict(pc)
            bp.update(pc, False, predicted)
        assert not bp.predict(pc)

    def test_counters_saturate(self):
        bp = GsharePredictor()
        pc = 0x40
        for _ in range(100):
            bp.update(pc, True, True)
        # One not-taken outcome must not flip a saturated counter.
        bp.update(pc, False, bp.predict(pc))
        assert bp.predict(pc)

    def test_history_distinguishes_patterns(self):
        bp = GsharePredictor(history_bits=4)
        pc = 0x80
        # Alternating pattern: with history the predictor converges.
        outcome = True
        for _ in range(200):
            predicted = bp.predict(pc)
            bp.update(pc, outcome, predicted)
            outcome = not outcome
        hits = 0
        for _ in range(50):
            predicted = bp.predict(pc)
            bp.update(pc, outcome, predicted)
            hits += predicted == outcome
            outcome = not outcome
        assert hits > 40

    def test_misprediction_counting(self):
        bp = GsharePredictor()
        bp.update(0x40, True, False)
        bp.update(0x40, True, True)
        assert bp.mispredictions == 1

    def test_table_size_is_8kbit(self):
        bp = GsharePredictor()
        assert len(bp._counters) * 2 == 8 * 1024


class TestOracle:
    def test_oracle_fixes_most_mispredictions(self):
        bp = GsharePredictor(oracle_fix_rate=0.8, seed=1)
        fixes = 0
        trials = 1000
        for i in range(trials):
            # Random outcomes on one PC: raw gshare will often be wrong.
            actual = (i * 2654435761) & 0x10000 != 0
            predicted = bp.predict_with_oracle(0x40, actual)
            bp.update(0x40, actual, predicted)
            fixes += predicted == actual
        # With an 80% fixup, accuracy far exceeds raw gshare on noise.
        assert fixes / trials > 0.85

    def test_oracle_rate_zero_is_pure_gshare(self):
        bp1 = GsharePredictor(oracle_fix_rate=0.0, seed=1)
        bp2 = GsharePredictor(seed=1)
        for i in range(100):
            actual = i % 3 == 0
            assert bp1.predict_with_oracle(0x40, actual) == \
                bp2.predict(0x40)
            bp1.update(0x40, actual, True)
            bp2.update(0x40, actual, True)

    def test_oracle_rate_one_is_always_correct(self):
        bp = GsharePredictor(oracle_fix_rate=1.0)
        for i in range(50):
            actual = i % 2 == 0
            assert bp.predict_with_oracle(0x40, actual) == actual

    def test_deterministic_with_seed(self):
        seq1 = []
        seq2 = []
        for seq in (seq1, seq2):
            bp = GsharePredictor(seed=42)
            for i in range(200):
                actual = (i * 7) % 5 < 2
                seq.append(bp.predict_with_oracle(0x40, actual))
                bp.update(0x40, actual, seq[-1])
        assert seq1 == seq2


class TestIndirect:
    def test_unknown_pc_predicts_zero(self):
        bp = GsharePredictor()
        assert bp.predict_indirect(0x40) == 0

    def test_last_target_cached(self):
        bp = GsharePredictor()
        bp.update_indirect(0x40, 0x1234)
        assert bp.predict_indirect(0x40) == 0x1234
        bp.update_indirect(0x40, 0x5678)
        assert bp.predict_indirect(0x40) == 0x5678
