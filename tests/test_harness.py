"""Tests for the experiment harness (configs, runner, figure plumbing)."""

import pytest

from repro.core.predictors import ENF, LSQ_MODE, NOT_ENF, TOTAL
from repro.harness import (
    FIGURE4_PARAMETERS,
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.harness.experiment import (
    ExperimentRunner,
    geometric_mean,
    normalized_ipc,
    suite_average,
)
from repro.harness.figures import FigureResult


class TestFigure4Presets:
    """The presets must match the paper's Figure 4 parameters exactly."""

    def test_baseline_core(self):
        config = baseline_lsq_config()
        assert config.width == 4
        assert config.fetch_branches_per_cycle == 1
        assert config.rob_size == 128
        assert config.sched_size == 128
        assert config.num_fus == 4
        assert config.mispredict_penalty == 8

    def test_aggressive_core(self):
        config = aggressive_lsq_config()
        assert config.width == 8
        assert config.fetch_branches_per_cycle == 8
        assert config.rob_size == 1024
        assert config.sched_size == 1024
        assert config.num_fus == 8

    def test_baseline_lsq_sizes(self):
        config = baseline_lsq_config()
        assert (config.lsq.lq_size, config.lsq.sq_size) == (48, 32)
        assert config.predictor.mode == LSQ_MODE

    def test_aggressive_lsq_sizes(self):
        assert (aggressive_lsq_config().lsq.lq_size,
                aggressive_lsq_config().lsq.sq_size) == (120, 80)

    def test_baseline_sfc_mdt_geometry(self):
        config = baseline_sfc_mdt_config()
        assert config.sfc.num_sets == 128 and config.sfc.assoc == 2
        assert config.mdt.num_sets == 4096 and config.mdt.assoc == 2
        assert config.mdt.granularity == 8
        assert config.predictor.mode == ENF

    def test_aggressive_sfc_mdt_geometry(self):
        config = aggressive_sfc_mdt_config()
        assert config.sfc.num_sets == 512 and config.sfc.assoc == 2
        assert config.mdt.num_sets == 8192 and config.mdt.assoc == 2
        assert config.predictor.mode == TOTAL

    def test_predictor_sizes(self):
        predictor = baseline_sfc_mdt_config().predictor
        assert predictor.pt_entries == 16384
        assert predictor.ct_entries == 16384
        assert predictor.num_ids == 4096
        assert predictor.lfpt_entries == 512

    def test_figure4_table_rows(self):
        names = [row[0] for row in FIGURE4_PARAMETERS]
        for expected in ("Pipeline Width", "Branch Predictor", "MDT",
                         "SFC", "Reorder Buffer", "Scheduling Window"):
            assert expected in names

    def test_mode_override(self):
        config = baseline_sfc_mdt_config(mode=NOT_ENF)
        assert config.predictor.mode == NOT_ENF

    def test_names_are_distinct(self):
        names = {baseline_lsq_config().name,
                 baseline_sfc_mdt_config().name,
                 aggressive_lsq_config().name,
                 aggressive_sfc_mdt_config().name}
        assert len(names) == 4


class TestExperimentRunner:
    def test_trace_cached_per_benchmark(self):
        runner = ExperimentRunner(scale=1500)
        first = runner.trace("gap")
        second = runner.trace("gap")
        assert first is second

    def test_run_produces_result(self):
        runner = ExperimentRunner(scale=1500)
        result = runner.run("gap", baseline_lsq_config())
        assert result.ipc > 0
        assert result.program_name == "gap"

    def test_run_suite_grid(self):
        runner = ExperimentRunner(scale=1500)
        configs = [baseline_lsq_config(), baseline_sfc_mdt_config()]
        results = runner.run_suite(["gap", "crafty"], configs)
        assert len(results) == 4
        assert ("gap", configs[0].name) in results


class TestMath:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1, 1, 1]) == 1.0

    def test_geometric_mean_nonpositive_is_zero(self):
        # A zero or negative sample has no geometric mean; returning
        # 0.0 (not a ValueError from a fractional power of a negative
        # product) keeps figure averages total rather than crashing.
        assert geometric_mean([2, 8, 0]) == 0.0
        assert geometric_mean([2, -1]) == 0.0
        assert geometric_mean([0.0]) == 0.0

    def test_normalized_ipc(self):
        runner = ExperimentRunner(scale=1500)
        configs = [baseline_lsq_config(), baseline_sfc_mdt_config()]
        results = runner.run_suite(["gap"], configs)
        ratio = normalized_ipc(results, "gap", configs[1].name,
                               configs[0].name)
        assert ratio == pytest.approx(
            results[("gap", configs[1].name)].ipc /
            results[("gap", configs[0].name)].ipc)

    def test_suite_average(self):
        runner = ExperimentRunner(scale=1500)
        configs = [baseline_lsq_config(), baseline_sfc_mdt_config()]
        results = runner.run_suite(["gap", "crafty"], configs)
        avg = suite_average(results, ["gap", "crafty"], configs[1].name,
                            configs[0].name)
        assert 0.5 < avg < 1.5


class TestFigureResult:
    def test_format_contains_rows_and_averages(self):
        figure = FigureResult(
            "demo", ["a", "b"],
            [("gap", {"a": 1.0, "b": 0.5}),
             ("swim", {"a": 0.9, "b": 1.1})])
        text = figure.format()
        assert "gap" in text and "swim" in text
        assert "int avg" in text and "fp avg" in text

    def test_value_and_average_accessors(self):
        figure = FigureResult(
            "demo", ["a"],
            [("gap", {"a": 2.0}), ("crafty", {"a": 8.0})])
        assert figure.value("gap", "a") == 2.0
        assert figure.average("int avg", "a") == pytest.approx(4.0)
