"""Tests for the pipeline event tracer."""

from repro import Processor
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.pipeline.pipetrace import PipeTracer, trace_run
from tests.conftest import assemble, counted_loop_program, store_load_program


def traced(build_fn, config=None):
    processor = Processor(assemble(build_fn),
                          config or baseline_lsq_config())
    return trace_run(processor)


class TestLifecycle:
    def test_every_retired_instruction_traced(self):
        tracer = traced(store_load_program)
        retired = tracer.retired()
        assert len(retired) == 5
        for trace in retired:
            assert trace.dispatch_cycle <= trace.issue_cycles[0]
            assert trace.issue_cycles[0] <= trace.complete_cycle
            assert trace.complete_cycle <= trace.retire_cycle

    def test_retirement_is_in_order(self):
        tracer = traced(counted_loop_program)
        cycles = [t.retire_cycle for t in tracer.retired()]
        assert cycles == sorted(cycles)

    def test_latency_query(self):
        tracer = traced(store_load_program)
        first = tracer.retired()[0]
        assert tracer.latency_of(first.seq) == \
            first.retire_cycle - first.dispatch_cycle
        assert tracer.latency_of(999_999) is None

    def test_tracing_does_not_change_timing(self):
        prog = assemble(counted_loop_program)
        plain = Processor(prog, baseline_lsq_config()).run()
        proc = Processor(prog, baseline_lsq_config())
        tracer = PipeTracer(proc)
        traced_result = proc.run()
        assert plain.cycles == traced_result.cycles
        assert len(tracer.retired()) == traced_result.instructions


class TestSpeculationEvents:
    @staticmethod
    def wrong_path_program(a):
        a.li("r1", 1)
        a.li("r2", 0x1000)
        a.li("r5", 88172645463325252)
        a.li("r3", 0)
        a.li("r4", 60)
        a.label("loop")
        a.slli("r6", "r5", 13)
        a.xor("r5", "r5", "r6")
        a.srli("r6", "r5", 7)
        a.xor("r5", "r5", "r6")
        a.andi("r6", "r5", 8)
        a.beq("r6", "r0", "skip")
        a.sd("r3", "r2", 0)
        a.label("skip")
        a.addi("r3", "r3", 1)
        a.bne("r3", "r4", "loop")
        a.halt()

    def test_squashes_recorded(self):
        tracer = traced(self.wrong_path_program)
        squashed = tracer.squashed()
        assert squashed, "mispredicted branches should squash something"
        for trace in squashed:
            assert trace.retire_cycle is None
            assert any(e.startswith("squash@") for e in trace.events)

    def test_replays_recorded(self):
        config = baseline_sfc_mdt_config(sfc_sets=1, sfc_assoc=1,
                                         mdt_sets=1, mdt_assoc=1)
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x2000)
            a.li("r3", 0x3000)
            for reg in ("r1", "r2", "r3"):
                a.sd("r9", reg, 0)
            a.halt()
        tracer = traced(build, config)
        assert any(t.replays > 0 for t in tracer.traces.values())

    def test_format_renders_rows(self):
        tracer = traced(store_load_program)
        text = tracer.format()
        assert "instruction" in text
        assert "ld r3" in text
        assert "sd r2" in text

    def test_format_window(self):
        tracer = traced(counted_loop_program)
        text = tracer.format(first=0, count=3)
        # header + separator + 3 rows
        assert len(text.splitlines()) == 5
