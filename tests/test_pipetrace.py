"""Tests for the pipeline event tracer."""

import json

import pytest

from repro import Processor
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.pipeline.pipetrace import PipeTracer, trace_run
from tests.conftest import assemble, counted_loop_program, store_load_program


def traced(build_fn, config=None):
    processor = Processor(assemble(build_fn),
                          config or baseline_lsq_config())
    return trace_run(processor)


class TestLifecycle:
    def test_every_retired_instruction_traced(self):
        tracer = traced(store_load_program)
        retired = tracer.retired()
        assert len(retired) == 5
        for trace in retired:
            assert trace.dispatch_cycle <= trace.issue_cycles[0]
            assert trace.issue_cycles[0] <= trace.complete_cycle
            assert trace.complete_cycle <= trace.retire_cycle

    def test_retirement_is_in_order(self):
        tracer = traced(counted_loop_program)
        cycles = [t.retire_cycle for t in tracer.retired()]
        assert cycles == sorted(cycles)

    def test_latency_query(self):
        tracer = traced(store_load_program)
        first = tracer.retired()[0]
        assert tracer.latency_of(first.seq) == \
            first.retire_cycle - first.dispatch_cycle
        assert tracer.latency_of(999_999) is None

    def test_tracing_does_not_change_timing(self):
        prog = assemble(counted_loop_program)
        plain = Processor(prog, baseline_lsq_config()).run()
        proc = Processor(prog, baseline_lsq_config())
        tracer = PipeTracer(proc)
        traced_result = proc.run()
        assert plain.cycles == traced_result.cycles
        assert len(tracer.retired()) == traced_result.instructions


class TestSpeculationEvents:
    @staticmethod
    def wrong_path_program(a):
        a.li("r1", 1)
        a.li("r2", 0x1000)
        a.li("r5", 88172645463325252)
        a.li("r3", 0)
        a.li("r4", 60)
        a.label("loop")
        a.slli("r6", "r5", 13)
        a.xor("r5", "r5", "r6")
        a.srli("r6", "r5", 7)
        a.xor("r5", "r5", "r6")
        a.andi("r6", "r5", 8)
        a.beq("r6", "r0", "skip")
        a.sd("r3", "r2", 0)
        a.label("skip")
        a.addi("r3", "r3", 1)
        a.bne("r3", "r4", "loop")
        a.halt()

    def test_squashes_recorded(self):
        tracer = traced(self.wrong_path_program)
        squashed = tracer.squashed()
        assert squashed, "mispredicted branches should squash something"
        for trace in squashed:
            assert trace.retire_cycle is None
            assert any(e.startswith("squash@") for e in trace.events)

    def test_replays_recorded(self):
        config = baseline_sfc_mdt_config(sfc_sets=1, sfc_assoc=1,
                                         mdt_sets=1, mdt_assoc=1)
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x2000)
            a.li("r3", 0x3000)
            for reg in ("r1", "r2", "r3"):
                a.sd("r9", reg, 0)
            a.halt()
        tracer = traced(build, config)
        assert any(t.replays > 0 for t in tracer.traces.values())

    def test_format_renders_rows(self):
        tracer = traced(store_load_program)
        text = tracer.format()
        assert "instruction" in text
        assert "ld r3" in text
        assert "sd r2" in text

    def test_format_window(self):
        tracer = traced(counted_loop_program)
        text = tracer.format(first=0, count=3)
        # header + separator + 3 rows
        assert len(text.splitlines()) == 5


class TestRingBuffer:
    def test_ring_keeps_youngest(self):
        full = traced(counted_loop_program)
        proc = Processor(assemble(counted_loop_program),
                         baseline_lsq_config())
        ringed = trace_run(proc, ring_size=16)
        assert len(ringed.traces) == 16
        # The survivors are exactly the 16 youngest sequence numbers.
        assert sorted(ringed.traces) == sorted(full.traces)[-16:]

    def test_ring_rejects_nonpositive(self):
        proc = Processor(assemble(counted_loop_program),
                         baseline_lsq_config())
        with pytest.raises(ValueError):
            PipeTracer(proc, ring_size=0)

    def test_ring_does_not_change_timing(self):
        prog = assemble(counted_loop_program)
        plain = Processor(prog, baseline_lsq_config()).run()
        proc = Processor(prog, baseline_lsq_config())
        tracer = PipeTracer(proc, ring_size=8)
        ringed = proc.run()
        assert plain.cycles == ringed.cycles
        assert plain.counters.as_dict() == ringed.counters.as_dict()
        assert len(tracer.traces) == 8


class TestEpochSnapshots:
    def run_with_epochs(self, epoch_cycles=100):
        proc = Processor(assemble(counted_loop_program),
                         baseline_sfc_mdt_config())
        return trace_run(proc, epoch_cycles=epoch_cycles), proc

    def test_snapshots_sampled(self):
        tracer, proc = self.run_with_epochs()
        assert tracer.epochs
        assert tracer.epochs[-1].cycle <= proc.cycle
        epochs = [s.epoch for s in tracer.epochs]
        assert epochs == sorted(epochs)
        for snapshot in tracer.epochs:
            assert 0 <= snapshot.rob_occupancy
            assert snapshot.retired >= 0

    def test_retired_is_monotonic(self):
        tracer, _ = self.run_with_epochs()
        retired = [s.retired for s in tracer.epochs]
        assert retired == sorted(retired)

    def test_jsonl_export_parses(self):
        tracer, _ = self.run_with_epochs()
        lines = tracer.epochs_jsonl().splitlines()
        assert len(lines) == len(tracer.epochs)
        for line in lines:
            snapshot = json.loads(line)
            assert {"epoch", "cycle", "retired", "rob_occupancy",
                    "stalls", "violation_rate"} <= set(snapshot)

    def test_write_epochs(self, tmp_path):
        tracer, _ = self.run_with_epochs()
        path = tmp_path / "epochs.jsonl"
        tracer.write_epochs(path)
        assert len(path.read_text().splitlines()) == len(tracer.epochs)

    def test_epoch_sampling_does_not_change_timing(self):
        prog = assemble(counted_loop_program)
        plain = Processor(prog, baseline_sfc_mdt_config()).run()
        proc = Processor(prog, baseline_sfc_mdt_config())
        PipeTracer(proc, epoch_cycles=64)
        sampled = proc.run()
        assert plain.cycles == sampled.cycles
        assert plain.counters.as_dict() == sampled.counters.as_dict()
