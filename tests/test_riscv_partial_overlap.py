"""Partial-overlap store-to-load forwarding through the RV32 frontend.

Real-machine-code mirrors of the SFC unit expectations in
``tests/test_sfc.py``: a narrow load fully contained in a recent wider
store forwards from the SFC (``test_exact_match_forwards`` /
sub-word containment), while a wider load over a narrower store is a
*partial* match -- never silently forwarded
(``test_partial_match_on_wider_load``); the load replays or takes the
slow path and still retires the architecturally correct bytes.

Every (store width, load width, byte offset) combination runs through
decode -> translate -> pipeline, cross-checked against the interpreter
oracle under both the SFC/MDT design and the associative-LSQ baseline.
"""

from __future__ import annotations

import pytest

from repro.harness.configs import (
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.isa.interp import Interpreter
from repro.isa.riscv import RVAssembler
from repro.pipeline.processor import Processor

BASE = 0x1000
PATTERN = 0xDEADBEEF  # bytes EF BE AD DE, little-endian
MASK32 = (1 << 32) - 1

#: Hand-computed RV32 results of each narrow load over the word
#: pattern 0xDEADBEEF stored at BASE (cross-check for the oracle).
NARROW_LOAD_EXPECTED = {
    ("lb", 0): 0xFFFFFFEF, ("lb", 1): 0xFFFFFFBE,
    ("lb", 2): 0xFFFFFFAD, ("lb", 3): 0xFFFFFFDE,
    ("lbu", 0): 0xEF, ("lbu", 1): 0xBE, ("lbu", 2): 0xAD,
    ("lbu", 3): 0xDE,
    ("lh", 0): 0xFFFFBEEF, ("lh", 2): 0xFFFFDEAD,
    ("lhu", 0): 0xBEEF, ("lhu", 2): 0xDEAD,
}


def run_both(asm):
    """Interpret and pipeline-simulate; returns (oracle, results)."""
    program = asm.build(name="overlap-test")
    interp = Interpreter(program)
    trace = interp.run(10_000)
    outcomes = {}
    for config in (baseline_sfc_mdt_config(), baseline_lsq_config()):
        core = Processor(program, config, trace=trace)
        result = core.run()
        assert core.memory.digest() == interp.memory.digest()
        assert core.architectural_registers() == list(interp.regs)
        outcomes[config.name] = result
    return interp, outcomes


class TestNarrowLoadUnderWideStore:
    """sw then lb/lbu/lh/lhu at every byte offset: contained loads
    forward the correct slice of the store's bytes."""

    @pytest.mark.parametrize("load_op,offset",
                             sorted(NARROW_LOAD_EXPECTED))
    def test_all_offsets(self, load_op, offset):
        asm = RVAssembler()
        asm.li32(1, BASE)
        asm.li32(2, PATTERN)
        asm.emit("sw", rs1=1, rs2=2, imm=0)
        asm.emit(load_op, rd=3, rs1=1, imm=offset)
        asm.emit("ecall")
        interp, _ = run_both(asm)
        assert interp.regs[3] & MASK32 == \
            NARROW_LOAD_EXPECTED[(load_op, offset)]

    def test_contained_loads_do_forward_from_the_sfc(self):
        # Aggregate over all combinations: the SFC must satisfy at
        # least some of these loads by forwarding (the sfc unit tests
        # pin the per-case classification; this pins the end-to-end
        # integration through the frontend).
        asm = RVAssembler()
        asm.li32(1, BASE)
        asm.li32(2, PATTERN)
        rd = 3
        for load_op, offset in sorted(NARROW_LOAD_EXPECTED):
            asm.emit("sw", rs1=1, rs2=2, imm=0)
            asm.emit(load_op, rd=rd, rs1=1, imm=offset)
            rd = 3 + (rd - 2) % 10
        asm.emit("ecall")
        _, outcomes = run_both(asm)
        sfc = outcomes[baseline_sfc_mdt_config().name]
        assert sfc.counters.get("sfc_forwards") > 0


class TestWideLoadOverNarrowStore:
    """sb/sh then lw: a partial match -- the load must not forward a
    stale word, and must retire the byte-merged value."""

    @pytest.mark.parametrize("store_op,offset", [
        ("sb", 0), ("sb", 1), ("sb", 2), ("sb", 3),
        ("sh", 0), ("sh", 2),
    ])
    def test_all_offsets(self, store_op, offset):
        size = 1 if store_op == "sb" else 2
        poke = 0xA5 if size == 1 else 0xA55A
        shift = 8 * offset
        expected = (PATTERN & ~(((1 << (8 * size)) - 1) << shift)
                    | (poke << shift)) & MASK32
        asm = RVAssembler()
        asm.li32(1, BASE)
        asm.li32(2, PATTERN)
        asm.li32(3, poke)
        asm.emit("sw", rs1=1, rs2=2, imm=0)     # word underneath
        asm.emit(store_op, rs1=1, rs2=3, imm=offset)
        asm.emit("lw", rd=4, rs1=1, imm=0)      # wider than last store
        asm.emit("ecall")
        interp, _ = run_both(asm)
        assert interp.regs[4] & MASK32 == expected

    def test_partial_matches_are_detected_not_forwarded(self):
        asm = RVAssembler()
        asm.li32(1, BASE)
        asm.li32(2, PATTERN)
        asm.li32(3, 0xA5)
        for offset in range(4):
            asm.emit("sw", rs1=1, rs2=2, imm=0)
            asm.emit("sb", rs1=1, rs2=3, imm=offset)
            asm.emit("lw", rd=4 + offset, rs1=1, imm=0)
        asm.emit("ecall")
        _, outcomes = run_both(asm)
        sfc = outcomes[baseline_sfc_mdt_config().name]
        partials = (sfc.counters.get("sfc_partial_matches")
                    + sfc.counters.get("load_replays_sfc_partial"))
        assert partials > 0, (
            "a wider load over a narrower store must classify as a "
            "partial match (cf. tests/test_sfc.py::"
            "test_partial_match_on_wider_load)")


class TestMixedWidthChains:
    def test_store_load_store_load_chain(self):
        """Alternating widths on one word: every read sees the merge
        of everything before it (regression for byte-merge ordering)."""
        asm = RVAssembler()
        asm.li32(1, BASE)
        asm.li32(2, 0x11223344)
        asm.emit("sw", rs1=1, rs2=2, imm=0)
        asm.li32(3, 0x99)
        asm.emit("sb", rs1=1, rs2=3, imm=1)     # -> 0x11229944
        asm.emit("lhu", rd=4, rs1=1, imm=0)     # 0x9944
        asm.li32(5, 0x7777)
        asm.emit("sh", rs1=1, rs2=5, imm=2)     # -> 0x77779944
        asm.emit("lw", rd=6, rs1=1, imm=0)
        asm.emit("lb", rd=7, rs1=1, imm=3)      # 0x77
        asm.emit("ecall")
        interp, _ = run_both(asm)
        assert interp.regs[4] & MASK32 == 0x9944
        assert interp.regs[6] & MASK32 == 0x77779944
        assert interp.regs[7] & MASK32 == 0x77
