"""Unit tests for the timing caches."""

import pytest

from repro.memory import Cache, CacheConfig, paper_hierarchy


def small_cache(assoc=2, sets=4, line=16):
    return Cache(CacheConfig("t", size_bytes=sets * assoc * line,
                             assoc=assoc, line_bytes=line, hit_latency=1,
                             miss_penalty=10))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("x", 8192, 4, 64, 1, 10)
        assert config.num_sets == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig("x", 1000, 3, 64, 1, 10)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            Cache(CacheConfig("x", 96 * 2, 2, 96, 1, 10))


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.lookup(0x100)
        assert cache.lookup(0x100)
        assert cache.misses == 1 and cache.hits == 1

    def test_same_line_different_bytes_hit(self):
        cache = small_cache(line=16)
        cache.lookup(0x100)
        assert cache.lookup(0x10F)

    def test_lru_evicts_oldest(self):
        cache = small_cache(assoc=2, sets=1, line=16)
        cache.lookup(0x000)
        cache.lookup(0x010)
        cache.lookup(0x020)        # evicts 0x000
        assert not cache.lookup(0x000)

    def test_lru_promotion_on_hit(self):
        cache = small_cache(assoc=2, sets=1, line=16)
        cache.lookup(0x000)
        cache.lookup(0x010)
        cache.lookup(0x000)        # promote
        cache.lookup(0x020)        # evicts 0x010
        assert cache.lookup(0x000)
        assert not cache.lookup(0x010)

    def test_sets_isolate(self):
        cache = small_cache(assoc=1, sets=4, line=16)
        cache.lookup(0x00)
        cache.lookup(0x10)         # different set
        assert cache.lookup(0x00)

    def test_flush_clears_lines_not_stats(self):
        cache = small_cache()
        cache.lookup(0x100)
        cache.flush()
        assert not cache.lookup(0x100)
        assert cache.accesses == 2

    def test_miss_rate(self):
        cache = small_cache()
        assert cache.miss_rate == 0.0
        cache.lookup(0x100)
        cache.lookup(0x100)
        assert cache.miss_rate == 0.5


class TestHierarchy:
    def test_l1_hit_is_single_cycle(self):
        h = paper_hierarchy()
        h.data_latency(0x100)
        assert h.data_latency(0x100) == 1

    def test_l1_miss_l2_hit(self):
        h = paper_hierarchy()
        h.data_latency(0x100)           # fill both levels
        h.l1d.flush()
        assert h.data_latency(0x100) == 1 + 10

    def test_cold_miss_goes_to_memory(self):
        h = paper_hierarchy()
        assert h.data_latency(0x100) == 1 + 10 + 100

    def test_inst_path_uses_l1i(self):
        h = paper_hierarchy()
        h.inst_latency(0x0)
        assert h.inst_latency(0x0) == 1
        assert h.l1i.accesses == 2
        assert h.l1d.accesses == 0

    def test_stats_keys(self):
        h = paper_hierarchy()
        h.data_latency(0x0)
        stats = h.stats()
        for key in ("l1i_misses", "l1d_misses", "l2_misses",
                    "l1d_miss_rate"):
            assert key in stats


class TestPaperGeometry:
    def test_figure4_parameters(self):
        h = paper_hierarchy()
        assert h.l1i.config.size_bytes == 8 * 1024
        assert h.l1i.config.assoc == 2
        assert h.l1i.config.line_bytes == 128
        assert h.l1d.config.size_bytes == 8 * 1024
        assert h.l1d.config.assoc == 4
        assert h.l1d.config.line_bytes == 64
        assert h.l1d.config.miss_penalty == 10
        assert h.l2.config.size_bytes == 512 * 1024
        assert h.l2.config.assoc == 8
        assert h.l2.config.line_bytes == 128
        assert h.l2.config.miss_penalty == 100
