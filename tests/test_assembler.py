"""Unit tests for the assembler."""

import pytest

from repro.isa import Assembler, AssemblyError, parse_reg
from repro.isa import instructions as ops


class TestParseReg:
    def test_string_form(self):
        assert parse_reg("r0") == 0
        assert parse_reg("r31") == 31

    def test_int_form(self):
        assert parse_reg(7) == 7

    def test_rejects_bad_name(self):
        with pytest.raises(ValueError):
            parse_reg("x7")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parse_reg("r32")
        with pytest.raises(ValueError):
            parse_reg(-1)


class TestLabels:
    def test_forward_reference(self):
        a = Assembler()
        a.j("end")
        a.addi("r1", "r0", 1)
        a.label("end")
        a.halt()
        prog = a.build()
        assert prog.instructions[0].imm == 8  # third instruction

    def test_backward_reference(self):
        a = Assembler()
        a.label("top")
        a.addi("r1", "r1", 1)
        a.bne("r1", "r2", "top")
        a.halt()
        prog = a.build()
        assert prog.instructions[1].imm == 0

    def test_duplicate_label_rejected(self):
        a = Assembler()
        a.label("x")
        with pytest.raises(AssemblyError):
            a.label("x")

    def test_undefined_label_rejected_at_build(self):
        a = Assembler()
        a.j("nowhere")
        with pytest.raises(AssemblyError):
            a.build()

    def test_numeric_target_passes_through(self):
        a = Assembler()
        a.j(0x40)
        prog = a.build()
        assert prog.instructions[0].imm == 0x40

    def test_here_tracks_position(self):
        a = Assembler()
        assert a.here() == 0
        a.nop()
        assert a.here() == 4


class TestEmission:
    def test_store_sources(self):
        a = Assembler()
        a.sd("r5", "r6", 16)
        inst = a.build().instructions[0]
        assert inst.op == ops.SD
        assert inst.rs1 == 6        # base
        assert inst.rs2 == 5        # data
        assert inst.imm == 16

    def test_load_fields(self):
        a = Assembler()
        a.lw("r3", "r4", -8)
        inst = a.build().instructions[0]
        assert inst.op == ops.LW
        assert inst.rd == 3 and inst.rs1 == 4 and inst.imm == -8

    def test_mov_is_add_with_r0(self):
        a = Assembler()
        a.mov("r2", "r9")
        inst = a.build().instructions[0]
        assert inst.op == ops.ADD and inst.rs2 == 0

    def test_all_alu_mnemonics_emit(self):
        a = Assembler()
        for name in ("add", "sub", "xor", "slt", "sltu", "sll", "srl",
                     "sra", "mul", "div", "rem", "fadd", "fsub", "fmul",
                     "fdiv"):
            getattr(a, name)("r1", "r2", "r3")
        a.and_("r1", "r2", "r3")
        a.or_("r1", "r2", "r3")
        assert len(a.build()) == 17

    def test_all_imm_mnemonics_emit(self):
        a = Assembler()
        for name in ("addi", "andi", "ori", "xori", "slti", "slli",
                     "srli", "srai"):
            getattr(a, name)("r1", "r2", 3)
        assert len(a.build()) == 8

    def test_all_branch_mnemonics_emit(self):
        a = Assembler()
        a.label("t")
        for name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            getattr(a, name)("r1", "r2", "t")
        assert len(a.build()) == 6


class TestDataSegments:
    def test_data_bytes(self):
        a = Assembler()
        a.data(0x1000, b"\x01\x02")
        a.halt()
        prog = a.build()
        assert prog.data[0x1000] == b"\x01\x02"

    def test_data_words_little_endian(self):
        a = Assembler()
        a.data_words(0x1000, [0x0102030405060708], width=8)
        a.halt()
        prog = a.build()
        assert prog.data[0x1000] == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1])

    def test_data_words_width_4(self):
        a = Assembler()
        a.data_words(0x2000, [1, 2], width=4)
        a.halt()
        assert a.build().data[0x2000] == b"\x01\x00\x00\x00\x02\x00\x00\x00"

    def test_data_words_masks_overflow(self):
        a = Assembler()
        a.data_words(0x2000, [-1], width=2)
        a.halt()
        assert a.build().data[0x2000] == b"\xff\xff"

    def test_build_merges_extra_data(self):
        a = Assembler()
        a.data(0x1000, b"a")
        a.halt()
        prog = a.build(data={0x2000: b"b"})
        assert prog.data == {0x1000: b"a", 0x2000: b"b"}

    def test_build_is_repeatable(self):
        a = Assembler()
        a.j("end")
        a.label("end")
        a.halt()
        first = a.build()
        second = a.build()
        assert [i.imm for i in first.instructions] == \
            [i.imm for i in second.instructions]
