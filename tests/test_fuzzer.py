"""Tests for the differential fuzzer, shrinker, and crash corpus.

The centerpiece is the fault-injection test: register a deliberately
broken memory subsystem (store-to-load forwards corrupt the value's low
bit), confirm the fuzzer catches it, minimizes the failing program to a
handful of lines, writes a replayable corpus case, and that the case
reproduces the failure on the broken config while passing on the real
ones.
"""

import json

import pytest

from repro.core import registry
from repro.core.subsystem import DONE, MemOutcome, SfcMdtSubsystem
from repro.harness.configs import (
    baseline_lsq_config,
    baseline_sfc_mdt_config,
    fuzz_config_matrix,
)
from repro.verify import (
    CASE_SCHEMA_VERSION,
    CorpusError,
    CrashCase,
    DifferentialFuzzer,
    load_corpus,
    replay_case,
    replay_corpus,
    shrink_failure,
)
from repro.workloads import fuzz_program


class _BrokenForwardSubsystem(SfcMdtSubsystem):
    """Deliberate fault: every 1-cycle (forwarded) load value has its
    low bit flipped.  Cache-latency loads are untouched, so programs
    without store-to-load forwarding pass -- the fuzzer must find a
    forwarding pattern to expose it."""

    def execute_load(self, seq, pc, addr, size, watermark,
                     at_rob_head=False):
        outcome = super().execute_load(seq, pc, addr, size, watermark,
                                       at_rob_head)
        if outcome.status == DONE and outcome.value is not None and \
                outcome.latency == 1:
            return MemOutcome(DONE, value=outcome.value ^ 1,
                              latency=outcome.latency,
                              violations=outcome.violations,
                              train_only=outcome.train_only)
        return outcome


@pytest.fixture
def broken_config():
    registry.register_subsystem("broken_forward")(_BrokenForwardSubsystem)
    config = baseline_sfc_mdt_config(name="broken-forward")
    config.subsystem = "broken_forward"
    try:
        yield config
    finally:
        registry.unregister("broken_forward")


class TestCleanCampaign:
    def test_default_matrix_covers_every_subsystem(self):
        names = {config.subsystem for config in fuzz_config_matrix()}
        assert registry.missing_coverage(names) == []

    def test_small_campaign_is_clean(self):
        fuzzer = DifferentialFuzzer()
        report = fuzzer.run(iterations=15, seed=0)
        assert report.ok
        assert report.iterations == 15
        assert report.failures == []

    def test_report_dict_is_schema_versioned(self):
        report = DifferentialFuzzer(
            configs=[baseline_lsq_config()]).run(iterations=2, seed=3)
        payload = report.to_dict()
        assert payload["kind"] == "fuzz"
        assert isinstance(payload["schema_version"], int)
        assert payload["ok"] is True
        json.dumps(payload)     # JSON-serializable end to end

    def test_seconds_budget_stops_campaign(self):
        fuzzer = DifferentialFuzzer(configs=[baseline_lsq_config()])
        report = fuzzer.run(seconds=0.2, seed=0)
        assert report.iterations >= 1
        assert report.elapsed >= 0.2

    def test_duplicate_config_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DifferentialFuzzer(configs=[baseline_lsq_config(),
                                        baseline_lsq_config()])

    def test_unfuzzed_subsystem_fails_coverage_check(self):
        class _Toy:     # never constructed; registration is the point
            pass

        registry.register_subsystem("toy_uncovered")(_Toy)
        try:
            with pytest.raises(ValueError, match="toy_uncovered"):
                DifferentialFuzzer()
        finally:
            registry.unregister("toy_uncovered")


class TestFaultInjection:
    def test_fuzzer_catches_broken_forwarding(self, broken_config):
        fuzzer = DifferentialFuzzer(configs=[broken_config])
        report = fuzzer.run(iterations=25, seed=0, minimize=False)
        assert not report.ok
        assert any(f.kind == "trace-divergence" for f in report.failures)
        assert all(f.config_name == "broken-forward"
                   for f in report.failures)

    def test_shrink_produces_minimal_case(self, broken_config):
        fuzzer = DifferentialFuzzer(configs=[broken_config])
        seed = next(s for s in range(50) if fuzzer.check_seed(s))
        program = fuzz_program(seed)
        failure = fuzzer.check_program(program, seed)[0]
        minimized = shrink_failure(fuzzer, program, failure)
        # The random program is dozens of instructions; the root cause
        # is one store forwarding to one load.
        assert len(minimized.instructions) < len(program.instructions)
        assert len(minimized.instructions) <= 8
        # The minimized program still reproduces the same failure.
        assert any(m.kind == failure.kind
                   for m in fuzzer.check_program(minimized))

    def test_campaign_writes_replayable_corpus(self, broken_config,
                                               tmp_path):
        fuzzer = DifferentialFuzzer(configs=[broken_config])
        corpus = tmp_path / "corpus"
        report = fuzzer.run(iterations=5, seed=0,
                            corpus_dir=str(corpus))
        assert not report.ok
        assert report.corpus_paths
        cases = load_corpus(corpus)
        assert cases
        for case in cases:
            assert case.config_name == "broken-forward"
            mismatches = replay_case(case, fuzzer)
            assert any(m.kind == case.kind for m in mismatches)

    def test_corpus_case_passes_on_healthy_configs(self, broken_config,
                                                   tmp_path):
        fuzzer = DifferentialFuzzer(configs=[broken_config])
        corpus = tmp_path / "corpus"
        fuzzer.run(iterations=5, seed=0, corpus_dir=str(corpus))
        # Explicit matrix: the default-config coverage check would
        # (correctly) object that "broken_forward" is still registered.
        healthy = DifferentialFuzzer(configs=fuzz_config_matrix())
        report = replay_corpus(corpus, healthy)
        assert report.ok, report.format()


@pytest.mark.fuzz
class TestNightlyCampaign:
    """Long campaign; tier-1 skips this (run with ``-m fuzz``)."""

    def test_five_hundred_seeds_clean(self):
        report = DifferentialFuzzer().run(iterations=500, seed=0)
        assert report.ok, report.format()


class TestCorpusFormat:
    def _case(self):
        return CrashCase(seed=7, kind="trace-divergence",
                         config_name="broken-forward", detail="demo",
                         program_asm="sh r1, 0(r0)\nlbu r2, 0(r0)\nhalt")

    def test_roundtrip(self, tmp_path):
        case = self._case()
        path = case.save(tmp_path)
        loaded = CrashCase.load(path)
        assert loaded.to_dict() == case.to_dict()
        assert loaded.program().instructions

    def test_save_never_clobbers(self, tmp_path):
        case = self._case()
        first = case.save(tmp_path)
        second = case.save(tmp_path)
        assert first != second
        assert len(load_corpus(tmp_path)) == 2

    def test_schema_version_enforced(self):
        payload = self._case().to_dict()
        payload["case_schema_version"] = CASE_SCHEMA_VERSION + 1
        with pytest.raises(CorpusError, match="case_schema_version"):
            CrashCase.from_dict(payload)

    def test_malformed_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CorpusError, match="bad.json"):
            CrashCase.load(bad)

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []
