"""Unit tests for the flat functional memory."""

from repro.memory import MainMemory
from repro.memory.main_memory import PAGE_SIZE


class TestByteAccess:
    def test_roundtrip(self):
        mem = MainMemory()
        mem.write_bytes(0x1234, b"hello")
        assert mem.read_bytes(0x1234, 5) == b"hello"

    def test_unmapped_reads_zero(self):
        mem = MainMemory()
        assert mem.read_bytes(0x9999, 4) == b"\x00" * 4

    def test_cross_page_write_and_read(self):
        mem = MainMemory()
        addr = PAGE_SIZE - 2
        mem.write_bytes(addr, b"abcd")
        assert mem.read_bytes(addr, 4) == b"abcd"
        assert mem.read_bytes(PAGE_SIZE, 2) == b"cd"

    def test_partial_page_read_mixes_zero(self):
        mem = MainMemory()
        mem.write_bytes(PAGE_SIZE, b"x")
        assert mem.read_bytes(PAGE_SIZE - 1, 3) == b"\x00x\x00"


class TestIntAccess:
    def test_little_endian(self):
        mem = MainMemory()
        mem.write_int(0x100, 4, 0x01020304)
        assert mem.read_bytes(0x100, 4) == b"\x04\x03\x02\x01"
        assert mem.read_int(0x100, 4) == 0x01020304

    def test_write_masks_to_size(self):
        mem = MainMemory()
        mem.write_int(0x100, 2, 0x12345678)
        assert mem.read_int(0x100, 2) == 0x5678

    def test_negative_value_wraps(self):
        mem = MainMemory()
        mem.write_int(0x100, 8, -1)
        assert mem.read_int(0x100, 8) == (1 << 64) - 1

    def test_cross_page_int(self):
        mem = MainMemory()
        addr = PAGE_SIZE - 4
        mem.write_int(addr, 8, 0x1122334455667788)
        assert mem.read_int(addr, 8) == 0x1122334455667788

    def test_overwrite_single_byte(self):
        mem = MainMemory()
        mem.write_int(0x100, 8, 0)
        mem.write_int(0x103, 1, 0xAB)
        assert mem.read_int(0x100, 8) == 0xAB << 24


class TestSegmentsAndCopy:
    def test_load_segments(self):
        mem = MainMemory()
        mem.load_segments({0x1000: b"aa", 0x2000: b"bb"})
        assert mem.read_bytes(0x1000, 2) == b"aa"
        assert mem.read_bytes(0x2000, 2) == b"bb"

    def test_copy_is_independent(self):
        mem = MainMemory()
        mem.write_int(0x100, 4, 7)
        clone = mem.copy()
        clone.write_int(0x100, 4, 9)
        assert mem.read_int(0x100, 4) == 7
        assert clone.read_int(0x100, 4) == 9

    def test_touched_pages_sorted(self):
        mem = MainMemory()
        mem.write_bytes(3 * PAGE_SIZE, b"z")
        mem.write_bytes(1 * PAGE_SIZE, b"a")
        bases = [base for base, _ in mem.touched_pages()]
        assert bases == [PAGE_SIZE, 3 * PAGE_SIZE]
