"""Tests for the observability layer: metric registry + run records."""

import json
from pathlib import Path

import pytest

from repro import Processor
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import ExperimentRunner
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    METRICS,
    MetricRegistry,
    UnknownMetricError,
)
from repro.obs.runrecord import (
    SCHEMA_VERSION,
    RunRecord,
    SchemaError,
    records_from_manifest,
    validate_record,
)
from repro.perf import manifest_digest
from tests.conftest import assemble, counted_loop_program

GOLDEN = Path(__file__).parent / "data" / "runrecord.golden.json"


def golden_record() -> RunRecord:
    """A fully deterministic record (fixed workload, no wall-clock)."""
    result = Processor(assemble(counted_loop_program),
                       baseline_sfc_mdt_config()).run()
    return RunRecord.from_sim_result(result, benchmark="counted-loop")


class TestRegistry:
    def test_declare_and_get(self):
        reg = MetricRegistry()
        metric = reg.declare("widget_count", COUNTER, "widgets",
                             "number of widgets", unit="widgets")
        assert reg.get("widget_count") is metric
        assert metric.kind == COUNTER
        assert "widget_count" in reg
        assert len(reg) == 1

    def test_redeclare_identical_is_idempotent(self):
        reg = MetricRegistry()
        first = reg.declare("x", COUNTER, "s", "d")
        second = reg.declare("x", COUNTER, "s", "d")
        assert first is second
        assert len(reg) == 1

    def test_redeclare_conflicting_raises(self):
        reg = MetricRegistry()
        reg.declare("x", COUNTER, "s", "d")
        with pytest.raises(ValueError):
            reg.declare("x", GAUGE, "s", "d")

    def test_unknown_metric_raises(self):
        reg = MetricRegistry()
        with pytest.raises(UnknownMetricError):
            reg.get("nonexistent")
        # It is a KeyError subclass, so dict-style handling works too.
        assert issubclass(UnknownMetricError, KeyError)

    def test_by_subsystem(self):
        assert {m.name for m in METRICS.by_subsystem("sfc")} >= {
            "sfc_forwards", "sfc_load_lookups"}

    def test_global_registry_covers_core_subsystems(self):
        subsystems = {metric.subsystem for metric in METRICS}
        assert subsystems >= {"pipeline", "sfc", "mdt", "sfc_mdt", "lsq",
                              "predictor", "cache"}


class TestDeclaredCoverage:
    """Every counter a real simulation emits is a declared metric."""

    @pytest.mark.parametrize("config_fn", [baseline_sfc_mdt_config,
                                           baseline_lsq_config])
    def test_all_emitted_counters_declared(self, config_fn):
        result = Processor(assemble(counted_loop_program),
                           config_fn()).run()
        undeclared = [name for name in result.counters.as_dict()
                      if name not in METRICS]
        assert not undeclared, f"undeclared counters: {undeclared}"


class TestRunRecord:
    def test_roundtrip(self):
        record = golden_record()
        payload = record.to_dict()
        validate_record(payload)
        again = RunRecord.from_dict(payload)
        assert again.to_dict() == payload
        assert again.cycles == record.cycles
        assert again.metrics == record.counters

    def test_json_roundtrip(self):
        record = golden_record()
        payload = json.loads(record.to_json())
        assert RunRecord.from_dict(payload).to_json() == record.to_json()

    def test_missing_field_rejected(self):
        payload = golden_record().to_dict()
        del payload["cycles"]
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_wrong_type_rejected(self):
        payload = golden_record().to_dict()
        payload["counters"] = [1, 2, 3]
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_foreign_schema_version_rejected(self):
        payload = golden_record().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError):
            RunRecord.from_dict(payload)

    def test_metric_accessors(self):
        record = golden_record()
        assert record.metric("retired_loads") > 0
        assert record.metric("no_such_metric", default=-1.0) == -1.0
        assert 0.0 <= record.rate("sfc_forwards", "retired_loads") <= 1.0
        assert record.rate("sfc_forwards", "absent_denominator") == 0.0

    def test_golden_file_matches(self):
        """The serialized schema is pinned byte-for-byte.

        If this fails because you changed the record shape: bump
        SCHEMA_VERSION deliberately and regenerate the golden file with
        ``python scripts/regen_golden.py``.
        """
        assert GOLDEN.exists(), "golden file missing; run scripts/regen_golden.py"
        expected = GOLDEN.read_text()
        assert golden_record().to_json(indent=2) + "\n" == expected

    def test_golden_schema_version_matches_code(self):
        """A SCHEMA_VERSION bump forces regenerating the golden file."""
        payload = json.loads(GOLDEN.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION


class TestManifestRecords:
    def make_runner(self):
        return ExperimentRunner(scale=1200, jobs=1, use_cache=False)

    def test_manifest_entries_are_valid_records(self):
        runner = self.make_runner()
        runner.run("gap", baseline_sfc_mdt_config())
        runner.run("gap", baseline_lsq_config())
        records = records_from_manifest(runner.manifest)
        names = [r.config_name for r in records]
        assert names[0].startswith("baseline-sfc-mdt")
        assert names[1].startswith("baseline-lsq")
        assert runner.last_record().config_name == names[1]

    def test_digest_ignores_additive_fields(self):
        """schema_version/kind/engine must not perturb the bit-exactness
        gate: the digest reads only the legacy manifest fields."""
        runner = self.make_runner()
        runner.run("gap", baseline_sfc_mdt_config())
        full = manifest_digest(runner.manifest)
        stripped = []
        for entry in runner.manifest:
            legacy = dict(entry)
            for added in ("schema_version", "kind", "engine",
                          "status", "attempts", "error"):
                legacy.pop(added)
            stripped.append(legacy)
        assert manifest_digest(stripped) == full
