"""Tests for the observability layer: metric registry + run records."""

import json
from pathlib import Path

import pytest

from repro import Processor
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import ExperimentRunner
from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    METRICS,
    MetricRegistry,
    UnknownMetricError,
)
from repro.obs.runrecord import (
    SCHEMA_VERSION,
    SCHEMA_VERSION_MULTICORE,
    RunRecord,
    SchemaError,
    records_from_manifest,
    validate_record,
)
from repro.perf import manifest_digest
from repro.verify import run_litmus_test
from tests.conftest import assemble, counted_loop_program

GOLDEN = Path(__file__).parent / "data" / "runrecord.golden.json"
GOLDEN_V3 = Path(__file__).parent / "data" / "runrecord_v3.golden.json"


def golden_record() -> RunRecord:
    """A fully deterministic record (fixed workload, no wall-clock)."""
    result = Processor(assemble(counted_loop_program),
                       baseline_sfc_mdt_config()).run()
    return RunRecord.from_sim_result(result, benchmark="counted-loop")


class TestRegistry:
    def test_declare_and_get(self):
        reg = MetricRegistry()
        metric = reg.declare("widget_count", COUNTER, "widgets",
                             "number of widgets", unit="widgets")
        assert reg.get("widget_count") is metric
        assert metric.kind == COUNTER
        assert "widget_count" in reg
        assert len(reg) == 1

    def test_redeclare_identical_is_idempotent(self):
        reg = MetricRegistry()
        first = reg.declare("x", COUNTER, "s", "d")
        second = reg.declare("x", COUNTER, "s", "d")
        assert first is second
        assert len(reg) == 1

    def test_redeclare_conflicting_raises(self):
        reg = MetricRegistry()
        reg.declare("x", COUNTER, "s", "d")
        with pytest.raises(ValueError):
            reg.declare("x", GAUGE, "s", "d")

    def test_unknown_metric_raises(self):
        reg = MetricRegistry()
        with pytest.raises(UnknownMetricError):
            reg.get("nonexistent")
        # It is a KeyError subclass, so dict-style handling works too.
        assert issubclass(UnknownMetricError, KeyError)

    def test_by_subsystem(self):
        assert {m.name for m in METRICS.by_subsystem("sfc")} >= {
            "sfc_forwards", "sfc_load_lookups"}

    def test_global_registry_covers_core_subsystems(self):
        subsystems = {metric.subsystem for metric in METRICS}
        assert subsystems >= {"pipeline", "sfc", "mdt", "sfc_mdt", "lsq",
                              "predictor", "cache"}


class TestDeclaredCoverage:
    """Every counter a real simulation emits is a declared metric."""

    @pytest.mark.parametrize("config_fn", [baseline_sfc_mdt_config,
                                           baseline_lsq_config])
    def test_all_emitted_counters_declared(self, config_fn):
        result = Processor(assemble(counted_loop_program),
                           config_fn()).run()
        undeclared = [name for name in result.counters.as_dict()
                      if name not in METRICS]
        assert not undeclared, f"undeclared counters: {undeclared}"


class TestRunRecord:
    def test_roundtrip(self):
        record = golden_record()
        payload = record.to_dict()
        validate_record(payload)
        again = RunRecord.from_dict(payload)
        assert again.to_dict() == payload
        assert again.cycles == record.cycles
        assert again.metrics == record.counters

    def test_json_roundtrip(self):
        record = golden_record()
        payload = json.loads(record.to_json())
        assert RunRecord.from_dict(payload).to_json() == record.to_json()

    def test_missing_field_rejected(self):
        payload = golden_record().to_dict()
        del payload["cycles"]
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_wrong_type_rejected(self):
        payload = golden_record().to_dict()
        payload["counters"] = [1, 2, 3]
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_foreign_schema_version_rejected(self):
        payload = golden_record().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError):
            RunRecord.from_dict(payload)

    def test_metric_accessors(self):
        record = golden_record()
        assert record.metric("retired_loads") > 0
        assert record.metric("no_such_metric", default=-1.0) == -1.0
        assert 0.0 <= record.rate("sfc_forwards", "retired_loads") <= 1.0
        assert record.rate("sfc_forwards", "absent_denominator") == 0.0

    def test_golden_file_matches(self):
        """The serialized schema is pinned byte-for-byte.

        If this fails because you changed the record shape: bump
        SCHEMA_VERSION deliberately and regenerate the golden file with
        ``python scripts/regen_golden.py``.
        """
        assert GOLDEN.exists(), "golden file missing; run scripts/regen_golden.py"
        expected = GOLDEN.read_text()
        assert golden_record().to_json(indent=2) + "\n" == expected

    def test_golden_schema_version_matches_code(self):
        """A SCHEMA_VERSION bump forces regenerating the golden file."""
        payload = json.loads(GOLDEN.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION


def multicore_record() -> RunRecord:
    """A deterministic multicore (schema v3) record."""
    litmus = run_litmus_test("mp")
    return RunRecord.from_system_result(litmus.system_result,
                                        benchmark="litmus-mp")


class TestMulticoreRecord:
    def test_single_core_records_stay_v2(self):
        payload = golden_record().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "cores" not in payload

    def test_multicore_records_are_v3(self):
        payload = multicore_record().to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION_MULTICORE
        assert payload["cores"] == 2
        assert any(name.startswith("core1_") for name in payload["counters"])

    def test_v3_roundtrip(self):
        record = multicore_record()
        payload = record.to_dict()
        validate_record(payload)
        again = RunRecord.from_dict(payload)
        assert again.cores == 2
        assert again.to_dict() == payload

    def test_v2_payload_with_cores_key_rejected(self):
        payload = golden_record().to_dict()
        payload["cores"] = 1
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_v3_payload_without_cores_rejected(self):
        payload = multicore_record().to_dict()
        del payload["cores"]
        with pytest.raises(SchemaError):
            validate_record(payload)

    def test_v3_payload_with_bad_cores_rejected(self):
        payload = multicore_record().to_dict()
        for bad in (0, -1, True, "2"):
            payload["cores"] = bad
            with pytest.raises(SchemaError):
                validate_record(payload)

    def test_golden_v3_file_matches(self):
        """The multicore schema is pinned byte-for-byte, like v2."""
        assert GOLDEN_V3.exists(), \
            "golden file missing; run scripts/regen_golden.py"
        expected = GOLDEN_V3.read_text()
        assert multicore_record().to_json(indent=2) + "\n" == expected


class TestCorePrefixedMetrics:
    def test_registry_resolves_core_prefixed_names(self):
        assert "core0_retired_loads" in METRICS
        assert "core17_cycles" in METRICS
        assert METRICS.get("core1_retired_loads") is \
            METRICS.get("retired_loads")
        assert "core0_not_a_metric" not in METRICS

    def test_declare_rejects_reserved_namespace(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="reserved"):
            reg.declare("core0_widgets", COUNTER, "s", "d")

    def test_system_counters_all_declared(self):
        record = multicore_record()
        undeclared = [name for name in record.counters
                      if name not in METRICS]
        assert not undeclared, f"undeclared counters: {undeclared}"


class TestManifestRecords:
    def make_runner(self):
        return ExperimentRunner(scale=1200, jobs=1, use_cache=False)

    def test_manifest_entries_are_valid_records(self):
        runner = self.make_runner()
        runner.run("gap", baseline_sfc_mdt_config())
        runner.run("gap", baseline_lsq_config())
        records = records_from_manifest(runner.manifest)
        names = [r.config_name for r in records]
        assert names[0].startswith("baseline-sfc-mdt")
        assert names[1].startswith("baseline-lsq")
        assert runner.last_record().config_name == names[1]

    def test_digest_ignores_additive_fields(self):
        """schema_version/kind/engine must not perturb the bit-exactness
        gate: the digest reads only the legacy manifest fields."""
        runner = self.make_runner()
        runner.run("gap", baseline_sfc_mdt_config())
        full = manifest_digest(runner.manifest)
        stripped = []
        for entry in runner.manifest:
            legacy = dict(entry)
            for added in ("schema_version", "kind", "engine",
                          "status", "attempts", "error"):
                legacy.pop(added)
            stripped.append(legacy)
        assert manifest_digest(stripped) == full
