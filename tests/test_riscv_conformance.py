"""The RV32 conformance suite: every committed real program retires to
the interpreter oracle's exact architectural state on every registered
memory subsystem -- the tier-1 gate behind the RISC-V frontend.

Also covers the machinery the gate rests on: the declared-suite
registry (duplicate rejection, no cherry-picking) and the
program-frontend registry whose ``missing_coverage`` rule makes an
unfuzzed frontend a tier-1 failure, mirroring the subsystem registry.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.configs import (
    baseline_lsq_config,
    baseline_sfc_mdt_config,
    fuzz_config_matrix,
)
from repro.isa.interp import Interpreter
from repro.isa.program import Program
from repro.verify import (
    ConformanceReport,
    DifferentialFuzzer,
    conformance_records,
    frontend_names,
    interleaved_builder,
    register_frontend,
    run_conformance,
)
from repro.verify.conformance import register_digest
from repro.verify.frontends import missing_coverage
from repro.workloads import RISCV_BENCHMARKS, register_suite, suite
from repro.workloads.suites import build

FIXTURES = Path(__file__).parent / "data" / "riscv"


class TestConformanceSuite:
    """The centerpiece: full corpus x full differential matrix."""

    def test_every_program_conforms_on_every_subsystem(self):
        report = run_conformance()
        assert isinstance(report, ConformanceReport)
        assert report.ok, report.format()
        # The whole declared suite ran -- no cherry-picking.
        assert sorted(report.oracle) == suite("riscv-conformance")
        matrix = fuzz_config_matrix()
        assert len(report.cells) == len(report.oracle) * len(matrix)
        # Every cell carries the digests it was compared on.
        for cell in report.cells:
            assert cell.register_digest
            assert cell.memory_digest
            assert cell.instructions == \
                report.oracle[cell.benchmark]["instructions"]

    def test_report_serializes_and_yields_records(self):
        report = run_conformance(configs=[baseline_sfc_mdt_config()])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["kind"] == "conformance"
        assert payload["ok"] is True
        records = conformance_records(report)
        assert len(records) == len(report.cells)
        for record in records:
            assert record.benchmark in report.oracle
            assert record.ipc > 0

    def test_mismatch_is_reported_not_swallowed(self):
        report = ConformanceReport("riscv-conformance", ["cfg"])
        from repro.verify.conformance import ConformanceCell
        report.cells.append(ConformanceCell(
            "rv-x", "cfg", ok=False, detail="final registers differ"))
        assert not report.ok
        assert "NONCONFORMING" in report.format()


class TestStlHazardFixture:
    """The committed synapse32-style store-to-load hazard program, with
    its expected final register values asserted under the oracle and
    under the default subsystems."""

    def load(self):
        program = Program.from_riscv(FIXTURES / "stl_hazard.hex")
        expected = json.loads(
            (FIXTURES / "stl_hazard_expected.json").read_text())
        return program, {int(name[1:]): value
                         for name, value in expected.items()}

    def test_oracle_reaches_expected_registers(self):
        program, expected = self.load()
        interp = Interpreter(program)
        interp.run(10_000)
        for index, value in expected.items():
            assert interp.regs[index] == value, f"x{index}"

    @pytest.mark.parametrize("config_fn", [baseline_sfc_mdt_config,
                                           baseline_lsq_config])
    def test_pipeline_reaches_expected_registers(self, config_fn):
        from repro.pipeline.processor import Processor

        program, expected = self.load()
        interp = Interpreter(program)
        trace = interp.run(10_000)
        core = Processor(program, config_fn(), trace=trace)
        core.run()
        regs = core.architectural_registers()
        for index, value in expected.items():
            assert regs[index] == value, f"x{index}"
        assert register_digest(regs) == register_digest(interp.regs)

    def test_fixture_is_in_the_declared_suite(self):
        assert "rv-stl_hazard" in suite("riscv-conformance")
        assert build("rv-stl_hazard", scale=0).name == "rv-stl_hazard"


class TestSuiteRegistry:
    def test_riscv_suite_is_the_whole_corpus(self):
        assert suite("riscv-conformance") == sorted(RISCV_BENCHMARKS)
        assert len(RISCV_BENCHMARKS) >= 6

    def test_duplicate_suite_name_rejected(self):
        with pytest.raises(ValueError, match="duplicate suite"):
            register_suite("riscv-conformance", sorted(RISCV_BENCHMARKS))

    def test_unknown_member_rejected(self):
        with pytest.raises(ValueError):
            register_suite("bogus-suite", ["no-such-benchmark"])

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            register_suite("empty-suite", [])

    def test_unknown_suite_name_rejected(self):
        with pytest.raises(KeyError):
            suite("no-such-suite")

    def test_suite_returns_a_copy(self):
        members = suite("riscv-conformance")
        members.append("tampered")
        assert "tampered" not in suite("riscv-conformance")


class TestFrontendCoverage:
    """An unfuzzed frontend must fail tier-1, like an unfuzzed
    subsystem."""

    def test_riscv_frontend_is_registered(self):
        assert "riscv" in frontend_names()
        assert "native" in frontend_names()

    def test_missing_coverage_flags_uncovered_frontends(self):
        assert missing_coverage(frontend_names()) == []
        assert missing_coverage(["native"]) == ["riscv"]

    def test_default_fuzz_builder_covers_every_frontend(self):
        fuzzer = DifferentialFuzzer()
        covered = set(fuzzer.builder.frontend_names)
        assert missing_coverage(covered) == [], (
            "the DifferentialFuzzer default builder must round-robin "
            "over every registered frontend")

    def test_interleaved_builder_visits_each_frontend(self):
        builder = interleaved_builder()
        names = {builder(seed).name.split("-")[0]
                 for seed in range(len(builder.frontend_names) * 2)}
        # Native fuzz programs are named random-..., RV32 ones rv-random-...
        assert len(names) == len(builder.frontend_names)

    def test_duplicate_frontend_rejected(self):
        with pytest.raises(ValueError, match="duplicate frontend"):
            register_frontend("riscv", lambda seed: None)

    def test_riscv_fuzz_programs_pass_the_differential_check(self):
        fuzzer = DifferentialFuzzer(
            builder=interleaved_builder(["riscv"]))
        report = fuzzer.run(iterations=8, seed=123)
        assert report.ok, report.format()
