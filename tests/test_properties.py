"""Property-based tests (hypothesis) on the core invariants.

The headline property is the paper's own correctness criterion: for any
program, the out-of-order pipeline retires exactly the architectural
trace, under every memory-subsystem configuration.  The pipeline enforces
this internally (golden-trace validation at retirement), so running a
random hazard-rich program to completion *is* the property check.

Reference-model properties check the SFC and MDT against simple oracles:
the SFC against a byte-map of in-flight stores, the MDT against an exact
ordering checker over the access history.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Processor, run_program
from repro.core import (
    MDTConfig,
    MemoryDisambiguationTable,
    SFC_CORRUPT,
    SFC_HIT,
    SFC_MISS,
    SFC_PARTIAL,
    SFCConfig,
    StoreForwardingCache,
)
from repro.harness.configs import (
    NOT_ENF,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.memory import MainMemory
from repro.workloads import fuzz_program, random_program

_SLOW = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

#: Nightly-only profile: same properties, an order of magnitude more
#: examples (the tier-1 run keeps the 25-example profile above).
_DEEP = settings(max_examples=250, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestPipelineEquivalence:
    """Any random program retires the architectural trace everywhere."""

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_baseline_lsq_matches_iss(self, seed):
        prog = random_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, baseline_lsq_config(), trace=trace).run()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_baseline_sfc_mdt_matches_iss(self, seed):
        prog = random_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, baseline_sfc_mdt_config(), trace=trace).run()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_not_enf_matches_iss(self, seed):
        prog = random_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, baseline_sfc_mdt_config(mode=NOT_ENF, name="n"),
                  trace=trace).run()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_aggressive_sfc_mdt_matches_iss(self, seed):
        prog = random_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, aggressive_sfc_mdt_config(), trace=trace).run()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_tiny_structures_still_correct(self, seed):
        """Degenerate 1-entry SFC/MDT: replays everywhere, still exact."""
        prog = random_program(seed, max_blocks=6)
        trace = run_program(prog, 500_000)
        config = baseline_sfc_mdt_config(sfc_sets=1, mdt_sets=1,
                                         name="tiny")
        config.sfc.assoc = 1
        config.mdt.assoc = 1
        Processor(prog, config, trace=trace).run()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_same_ipc_across_reruns(self, seed):
        prog = random_program(seed, max_blocks=6)
        trace = run_program(prog, 500_000)
        config = baseline_sfc_mdt_config()
        first = Processor(prog, config, trace=trace).run()
        second = Processor(prog, config, trace=trace).run()
        assert first.cycles == second.cycles


@pytest.mark.slow
class TestPipelineEquivalenceDeep:
    """The headline property at nightly depth (250 examples each) and
    over the fuzz generator's wider program space (unaligned accesses,
    byte-granularity partial forwards, overlapping stores)."""

    @_DEEP
    @given(seed=st.integers(min_value=0, max_value=1_000_000))
    def test_baseline_lsq_matches_iss(self, seed):
        prog = fuzz_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, baseline_lsq_config(), trace=trace).run()

    @_DEEP
    @given(seed=st.integers(min_value=0, max_value=1_000_000))
    def test_baseline_sfc_mdt_matches_iss(self, seed):
        prog = fuzz_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, baseline_sfc_mdt_config(), trace=trace).run()

    @_DEEP
    @given(seed=st.integers(min_value=0, max_value=1_000_000))
    def test_aggressive_sfc_mdt_matches_iss(self, seed):
        prog = fuzz_program(seed)
        trace = run_program(prog, 500_000)
        Processor(prog, aggressive_sfc_mdt_config(), trace=trace).run()


# -- SFC reference model -------------------------------------------------------

_sfc_ops = st.lists(
    st.tuples(
        st.sampled_from(["store", "load", "retire_latest", "flush"]),
        st.integers(min_value=0, max_value=15),      # word slot
        st.integers(min_value=0, max_value=7),       # offset
        st.sampled_from([1, 2, 4, 8]),               # size
        st.integers(min_value=0, max_value=2 ** 64 - 1),
    ),
    min_size=1, max_size=60)


class _SfcOracle:
    """Byte-level reference for SFC forwarding semantics."""

    def __init__(self):
        self.bytes = {}        # addr -> (value, writer_seq)
        self.corrupt = set()
        self.writers = {}      # word -> latest writer seq

    def store(self, addr, size, value, seq):
        payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        for i in range(size):
            self.bytes[addr + i] = payload[i]
            self.corrupt.discard(addr + i)
        for word in {(addr + i) >> 3 for i in range(size)}:
            self.writers[word] = max(seq, self.writers.get(word, -1))

    def flush(self):
        self.corrupt.update(self.bytes)

    def retire(self, word, seq):
        if self.writers.get(word) == seq:
            del self.writers[word]
            for addr in list(self.bytes):
                if addr >> 3 == word:
                    del self.bytes[addr]
                    self.corrupt.discard(addr)

    def load(self, addr, size):
        needed = range(addr, addr + size)
        if any(a in self.corrupt for a in needed):
            return SFC_CORRUPT, None
        present = [a for a in needed if a in self.bytes]
        if len(present) == size:
            return SFC_HIT, int.from_bytes(
                bytes(self.bytes[a] for a in needed), "little")
        if present:
            return SFC_PARTIAL, None
        return SFC_MISS, None


class TestSfcAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(ops=_sfc_ops)
    def test_matches_reference_model(self, ops):
        # Large enough that no set conflicts occur: pure semantics test.
        sfc = StoreForwardingCache(SFCConfig(num_sets=64, assoc=4))
        oracle = _SfcOracle()
        base = 0x1000
        seq = 0
        live = {}
        for kind, slot, offset, size, value in ops:
            addr = base + slot * 8 + offset
            if kind == "store":
                seq += 1
                assert sfc.probe_store(addr, size, watermark=0)
                sfc.store_write(addr, size, value, seq)
                oracle.store(addr, size, value, seq)
                for word in {(addr + i) >> 3 for i in range(size)}:
                    live[word] = max(seq, live.get(word, -1))
            elif kind == "load":
                got = sfc.load_read(addr, size)
                expected = oracle.load(addr, size)
                assert got == expected
            elif kind == "retire_latest":
                word = (base + slot * 8) >> 3
                if word in live:
                    retiring = live.pop(word)
                    sfc.on_store_retire(word << 3, 8, retiring)
                    oracle.retire(word, retiring)
            else:
                sfc.on_partial_flush()
                oracle.flush()


# -- MDT reference model ---------------------------------------------------------

_mdt_ops = st.lists(
    st.tuples(st.booleans(),                       # is_store
              st.integers(min_value=0, max_value=7),   # granule
              st.integers(min_value=0, max_value=200)),  # seq hint
    min_size=1, max_size=50)


class TestMdtAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(ops=_mdt_ops)
    def test_detects_exactly_the_timestamp_violations(self, ops):
        """Without conflicts/retirement, the MDT must flag an access iff
        basic timestamp ordering does (against the max seq seen)."""
        mdt = MemoryDisambiguationTable(
            MDTConfig(num_sets=64, assoc=4, granularity=8))
        max_load = {}
        max_store = {}
        for is_store, granule, seq in ops:
            addr = 0x2000 + granule * 8
            if is_store:
                expect = []
                if max_load.get(granule, -1) > seq:
                    expect.append("true")
                if max_store.get(granule, -1) > seq:
                    expect.append("output")
                result = mdt.access_store(addr, 8, seq, pc=0x10,
                                          watermark=0)
                assert sorted(v.kind for v in result.violations) == \
                    sorted(expect)
                max_store[granule] = max(max_store.get(granule, -1), seq)
            else:
                expect_anti = max_store.get(granule, -1) > seq
                result = mdt.access_load(addr, 8, seq, pc=0x14,
                                         watermark=0)
                got_anti = any(v.kind == "anti" for v in result.violations)
                assert got_anti == expect_anti
                if not expect_anti:
                    max_load[granule] = max(max_load.get(granule, -1), seq)


# -- memory roundtrip property ------------------------------------------------------

class TestMemoryProperties:
    @settings(max_examples=100, deadline=None)
    @given(addr=st.integers(min_value=0, max_value=1 << 20),
           size=st.sampled_from([1, 2, 4, 8]),
           value=st.integers(min_value=0))
    def test_write_read_roundtrip(self, addr, size, value):
        mem = MainMemory()
        mem.write_int(addr, size, value)
        assert mem.read_int(addr, size) == value & ((1 << (8 * size)) - 1)

    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=64),
           addr=st.integers(min_value=0, max_value=1 << 16))
    def test_bytes_roundtrip_across_pages(self, payload, addr):
        mem = MainMemory()
        mem.write_bytes(addr + 4090, payload)   # straddle a page boundary
        assert mem.read_bytes(addr + 4090, len(payload)) == payload
