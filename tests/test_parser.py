"""Tests for the text-format assembly parser."""

import pytest

from repro.isa import Interpreter, run_program
from repro.isa.parser import AsmSyntaxError, parse_asm


def run_regs(text):
    interp = Interpreter(parse_asm(text))
    interp.run()
    return interp.regs


class TestBasics:
    def test_minimal_program(self):
        program = parse_asm("halt")
        assert len(program) == 1

    def test_alu_and_immediates(self):
        regs = run_regs("""
            li   r1, 6
            li   r2, 7
            mul  r3, r1, r2
            addi r4, r3, -2
            and  r5, r3, r4
            halt
        """)
        assert regs[3] == 42 and regs[4] == 40 and regs[5] == 40

    def test_memory_operands(self):
        regs = run_regs("""
            li r1, 0x1000
            li r2, 0xABCD
            sd r2, 8(r1)
            ld r3, 8(r1)
            lhu r4, 8(r1)
            halt
        """)
        assert regs[3] == 0xABCD and regs[4] == 0xABCD

    def test_negative_offset(self):
        regs = run_regs("""
            li r1, 0x1010
            li r2, 5
            sd r2, -16(r1)
            ld r3, -16(r1)
            halt
        """)
        assert regs[3] == 5

    def test_loop_with_labels(self):
        regs = run_regs("""
            li r1, 0
            li r2, 10
            li r3, 0
        loop:
            add  r3, r3, r1
            addi r1, r1, 1
            bne  r1, r2, loop
            halt
        """)
        assert regs[3] == 45

    def test_label_on_same_line(self):
        regs = run_regs("""
            li r1, 1
            j end
            li r1, 99
        end: halt
        """)
        assert regs[1] == 1

    def test_comments_ignored(self):
        regs = run_regs("""
            # full-line comment
            li r1, 3      # trailing comment
            li r2, 4      ; alternative comment marker
            add r3, r1, r2
            halt
        """)
        assert regs[3] == 7

    def test_call_and_return(self):
        regs = run_regs("""
            jal r31, fn
            li r2, 7
            halt
        fn:
            li r1, 3
            jr r31
        """)
        assert regs[1] == 3 and regs[2] == 7

    def test_numeric_branch_target(self):
        program = parse_asm("""
            beq r0, r0, 0x8
            halt
            halt
        """)
        assert program.instructions[0].imm == 0x8


class TestDataDirectives:
    def test_data_words(self):
        regs = run_regs("""
            .data 0x2000 words 11 22 33
            li r1, 0x2000
            ld r2, 8(r1)
            halt
        """)
        assert regs[2] == 22

    def test_data_bytes(self):
        regs = run_regs("""
            .data 0x2000 bytes 0xAA 0xBB
            li r1, 0x2000
            lbu r2, 1(r1)
            halt
        """)
        assert regs[2] == 0xBB


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError, match="unknown mnemonic"):
            parse_asm("frobnicate r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmSyntaxError, match="expects 3 operands"):
            parse_asm("add r1, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AsmSyntaxError, match="bad memory operand"):
            parse_asm("ld r1, r2")

    def test_bad_integer(self):
        with pytest.raises(AsmSyntaxError, match="bad integer"):
            parse_asm("li r1, zork")

    def test_bad_data_directive(self):
        with pytest.raises(AsmSyntaxError, match="expected"):
            parse_asm(".data 0x1000 frob 1 2")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmSyntaxError) as exc:
            parse_asm("li r1, 1\nbogus r2\nhalt")
        assert exc.value.line_number == 2

    def test_bad_register_name(self):
        with pytest.raises(AsmSyntaxError):
            parse_asm("add x1, r2, r3")


class TestRoundTrip:
    def test_parsed_program_runs_on_pipeline(self):
        from repro import Processor
        from repro.harness import baseline_sfc_mdt_config
        program = parse_asm("""
            li r1, 0x1000
            li r2, 0
            li r3, 30
        loop:
            slli r4, r2, 3
            add  r4, r4, r1
            sd   r2, 0(r4)
            ld   r5, 0(r4)
            add  r6, r6, r5
            addi r2, r2, 1
            bne  r2, r3, loop
            halt
        """)
        trace = run_program(program)
        result = Processor(program, baseline_sfc_mdt_config(),
                           trace=trace).run()
        assert result.instructions == len(trace)
