"""Tests for the event-based dynamic-energy model."""

import pytest

from repro import Processor
from repro.harness.configs import baseline_lsq_config
from repro.power import EnergyModel
from repro.stats import Counters
from tests.conftest import assemble


class TestEnergyArithmetic:
    def test_lsq_energy_scales_with_entries_searched(self):
        model = EnergyModel(cam_entry_search_energy=2.0)
        counters = Counters()
        counters.set("lsq_sq_entries_searched", 100)
        counters.set("lsq_load_searches", 10)
        energy = model.lsq_energy(counters)
        assert energy["search_energy"] == 200.0
        assert energy["write_energy"] == 10.0
        assert energy["total_energy"] == 210.0

    def test_sfc_mdt_energy_is_per_access(self):
        model = EnergyModel()
        counters = Counters()
        counters.set("sfc_load_lookups", 10)
        counters.set("mdt_load_accesses", 10)
        counters.set("mdt_store_accesses", 5)
        counters.set("sfc_store_writes", 5)
        energy = model.sfc_mdt_energy(counters)
        assert energy["search_energy"] == 50.0   # 25 accesses x 2 probes
        assert energy["write_energy"] == 20.0
        assert energy["total_energy"] == 70.0

    def test_compare_ratio(self):
        model = EnergyModel()
        lsq = Counters()
        lsq.set("lsq_sq_entries_searched", 1000)
        sfc = Counters()
        sfc.set("sfc_load_lookups", 100)
        comparison = model.compare(lsq, sfc)
        assert comparison["ratio"] == pytest.approx(
            2000.0 / 200.0)

    def test_zero_sfc_energy_gives_inf(self):
        model = EnergyModel()
        assert model.compare(Counters(), Counters())["ratio"] == \
            float("inf")


class TestEndToEndEnergy:
    def test_lsq_burns_more_than_sfc_mdt(self):
        """The paper's structural claim: CAM-search energy grows with
        queue occupancy while indexed accesses stay constant, so with a
        deep window the LSQ burns more for the same workload."""
        from repro.harness.configs import (aggressive_lsq_config,
                                           aggressive_sfc_mdt_config)

        def build(a):
            # Long-latency producers keep many stores in flight, so each
            # LSQ search scans a well-populated store queue.
            a.li("r1", 0x1000)
            a.li("r2", 0)
            a.li("r3", 150)
            a.label("loop")
            a.andi("r4", "r2", 0x3F8)
            a.add("r4", "r4", "r1")
            a.div("r5", "r2", "r3")
            a.sd("r5", "r4", 0)
            a.ld("r6", "r4", 0)
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        prog = assemble(build)
        lsq = Processor(prog, aggressive_lsq_config()).run()
        sfc = Processor(prog, aggressive_sfc_mdt_config()).run()
        model = EnergyModel()
        comparison = model.compare(lsq.counters, sfc.counters)
        assert comparison["ratio"] > 1.0

    def test_bigger_lsq_costs_more_energy(self):
        def build(a):
            # Keep many stores in flight so searches scan real entries.
            a.li("r1", 0x1000)
            a.li("r2", 0)
            a.li("r3", 100)
            a.label("loop")
            a.andi("r4", "r2", 0x1F8)
            a.add("r4", "r4", "r1")
            a.div("r5", "r2", "r3")
            a.sd("r5", "r4", 0)
            a.ld("r6", "r4", 0)
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        prog = assemble(build)
        small = Processor(prog, baseline_lsq_config(8, 8)).run()
        large = Processor(prog, baseline_lsq_config(48, 32)).run()
        model = EnergyModel()
        assert model.lsq_energy(large.counters)["total_energy"] >= \
            model.lsq_energy(small.counters)["total_energy"]
