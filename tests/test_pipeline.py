"""Integration tests: the out-of-order pipeline end to end.

Every test runs a program to completion; the pipeline validates each
retired instruction against the golden ISS trace internally, so merely
finishing is a strong correctness statement.  The tests then check the
microarchitectural *events* the paper's mechanisms are about.
"""

import pytest

from repro import Assembler, Processor, run_program
from repro.harness.configs import (
    NOT_ENF,
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from tests.conftest import assemble, counted_loop_program, store_load_program


def run(prog, config):
    return Processor(prog, config).run()


class TestBasicExecution:
    def test_store_load_roundtrip(self, any_config):
        result = run(assemble(store_load_program), any_config)
        assert result.instructions == 5

    def test_counted_loop(self, any_config):
        result = run(assemble(counted_loop_program), any_config)
        assert result.ipc > 0.5

    def test_empty_program_halts(self, any_config):
        a = Assembler()
        a.halt()
        assert run(a.build(), any_config).instructions == 1

    def test_ipc_bounded_by_width(self):
        prog = assemble(counted_loop_program)
        result = run(prog, baseline_lsq_config())
        assert result.ipc <= 4.0

    def test_alu_widths_and_latencies(self, any_config):
        def build(a):
            a.li("r1", 7)
            a.li("r2", 3)
            a.mul("r3", "r1", "r2")
            a.div("r4", "r1", "r2")
            a.rem("r5", "r1", "r2")
            a.fadd("r6", "r1", "r2")
            a.fdiv("r7", "r1", "r2")
            a.halt()
        result = run(assemble(build), any_config)
        assert result.instructions == 8

    def test_all_memory_widths(self, any_config):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x1122334455667788)
            for st in ("sb", "sh", "sw", "sd"):
                getattr(a, st)("r2", "r1", 0x40)
            for ld in ("lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"):
                getattr(a, ld)("r3", "r1", 0x40)
            a.halt()
        run(assemble(build), any_config)

    def test_deterministic_cycles(self, any_config):
        prog = assemble(counted_loop_program)
        first = run(prog, any_config)
        second = run(prog, any_config)
        assert first.cycles == second.cycles


class TestBranchRecovery:
    def test_unpredictable_branches_recover(self, any_config):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0)       # i
            a.li("r3", 60)      # n
            a.li("r7", 0)
            a.label("loop")
            a.mul("r4", "r2", "r2")
            a.andi("r5", "r4", 4)
            a.beq("r5", "r0", "skip")
            a.sd("r2", "r1", 0)
            a.ld("r6", "r1", 0)
            a.add("r7", "r7", "r6")
            a.label("skip")
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        result = run(assemble(build), any_config)
        assert result.counters.get("branch_mispredict_flushes") > 0

    def test_jal_jr_call_return(self, any_config):
        def build(a):
            a.li("r2", 0)
            a.li("r3", 20)
            a.label("loop")
            a.jal("r31", "inc")
            a.bne("r2", "r3", "loop")
            a.halt()
            a.label("inc")
            a.addi("r2", "r2", 1)
            a.jr("r31")
        run(assemble(build), any_config)

    def test_wrong_path_instructions_never_retire(self):
        """A wrong path that would corrupt state if retired."""
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 1)
            a.li("r3", 0xBAD)
            a.beq("r2", "r0", "poison")   # never taken, maybe predicted
            a.j("end")
            a.label("poison")
            a.sd("r3", "r1", 0)
            a.label("end")
            a.ld("r4", "r1", 0)
            a.halt()
        for config in (baseline_lsq_config(), baseline_sfc_mdt_config()):
            run(assemble(build), config)   # validation would catch it


class TestMemoryOrderingRecovery:
    @staticmethod
    def late_store_program(a):
        """Store data fed by a long chain: younger loads issue first."""
        a.li("r1", 0x1000)
        a.li("r2", 0)
        a.li("r3", 40)
        a.li("r7", 3)
        a.label("loop")
        a.mul("r4", "r2", "r7")
        a.mul("r4", "r4", "r7")
        a.sd("r4", "r1", 0)
        a.ld("r5", "r1", 0)
        a.add("r6", "r6", "r5")
        a.addi("r2", "r2", 1)
        a.bne("r2", "r3", "loop")
        a.halt()

    def test_true_violations_detected_and_recovered(self):
        prog = assemble(self.late_store_program)
        result = run(prog, baseline_sfc_mdt_config())
        # The first iterations violate; the predictor then serialises.
        assert result.counters.get("violation_flushes_true") >= 1

    def test_lsq_detects_violations_too(self):
        prog = assemble(self.late_store_program)
        result = run(prog, baseline_lsq_config())
        assert result.counters.get("lsq_true_violations") >= 1

    def test_predictor_quenches_violations(self):
        """ENF enforcement keeps the violation count far below the
        iteration count -- the store-set learning effect."""
        prog = assemble(self.late_store_program)
        result = run(prog, baseline_sfc_mdt_config())
        violations = result.counters.get("violation_flushes_true")
        assert violations <= 6

    def test_mdt_tag_check_penalty_applied(self):
        prog = assemble(self.late_store_program)
        result = run(prog, baseline_sfc_mdt_config())
        assert result.counters.get("partial_flushes") >= 1


class TestSfcCorruptionScenario:
    def test_paper_section23_example(self):
        """ST / LD / mispredicted BR / wrong-path ST, then a correct-path
        LD: the load must obtain store [1]'s value, not store [3]'s."""
        def build(a):
            a.li("r1", 0xB000)
            a.li("r2", 0xA1A1)
            a.li("r3", 0xB2B2)
            a.li("r4", 1)
            a.sd("r2", "r1", 0)          # store [1]
            a.ld("r5", "r1", 0)          # load [2]
            a.beq("r4", "r0", "wrong")   # never taken
            a.j("join")
            a.label("wrong")
            a.sd("r3", "r1", 0)          # store [3], wrong path only
            a.label("join")
            a.ld("r6", "r1", 0)          # load [4]
            a.halt()
        # Run under the SFC/MDT on both cores; retirement validation
        # guarantees r6 == 0xA1A1 architecturally.
        for config in (baseline_sfc_mdt_config(),
                       aggressive_sfc_mdt_config()):
            run(assemble(build), config)

    def test_corruption_replays_occur(self):
        """Mispredicted branches over dense store traffic force loads to
        replay on corruption marks."""
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0)
            a.li("r3", 200)
            a.li("r5", 88172645463325252)
            a.label("loop")
            a.div("r11", "r5", "r3")     # slow op delays retirement
            a.andi("r4", "r2", 0x78)
            a.add("r4", "r4", "r1")
            a.sd("r2", "r4", 0)
            # xorshift noise: unpredictable branch -> partial flushes
            a.slli("r6", "r5", 13)
            a.xor("r5", "r5", "r6")
            a.srli("r6", "r5", 7)
            a.xor("r5", "r5", "r6")
            a.andi("r6", "r5", 16)
            a.beq("r6", "r0", "skip")
            a.addi("r7", "r7", 1)
            a.label("skip")
            # Read the slot stored one iteration ago: its writer is
            # completed but (behind the slow divide) unretired, so after
            # a flush it reads corrupt.
            a.addi("r10", "r2", -1)
            a.andi("r10", "r10", 0x78)
            a.add("r10", "r10", "r1")
            a.ld("r8", "r10", 0)
            a.add("r9", "r9", "r8")
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        result = run(assemble(build), baseline_sfc_mdt_config())
        assert result.counters.get("load_replays_sfc_corrupt") > 0


class TestStructuralConflicts:
    def test_sfc_conflicts_replay_and_recover(self):
        config = baseline_sfc_mdt_config(sfc_sets=1, sfc_assoc=1)
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x2000)
            a.li("r3", 0x3000)
            for reg in ("r1", "r2", "r3"):
                a.sd("r9", reg, 0)
            for reg in ("r1", "r2", "r3"):
                a.ld("r10", reg, 0)
            a.halt()
        result = run(assemble(build), config)
        assert result.counters.get("store_replays_sfc_conflict") > 0

    def test_mdt_conflicts_replay_and_recover(self):
        config = baseline_sfc_mdt_config(mdt_sets=1, mdt_assoc=1)
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x2000)
            a.li("r3", 0x3000)
            for reg in ("r1", "r2", "r3"):
                a.ld("r10", reg, 0)
            a.add("r4", "r10", "r10")
            a.halt()
        result = run(assemble(build), config)
        assert result.counters.get("load_replays_mdt_conflict") > 0

    def test_rob_head_bypass_guarantees_progress(self):
        """With a degenerate 1-entry SFC/MDT, the machine still finishes
        (Section 2.2's ROB-lockup avoidance)."""
        config = baseline_sfc_mdt_config(sfc_sets=1, sfc_assoc=1,
                                         mdt_sets=1, mdt_assoc=1)
        result = run(assemble(counted_loop_program), config)
        assert result.instructions > 0

    def test_store_fifo_full_stalls_dispatch(self):
        config = baseline_sfc_mdt_config()
        config.store_fifo_capacity = 2
        def build(a):
            a.li("r1", 0x1000)
            for i in range(12):
                a.sd("r1", "r1", 8 * i)
            a.halt()
        result = run(assemble(build), config)
        assert result.counters.get("dispatch_stalls_sq") > 0

    def test_small_lsq_stalls_dispatch(self):
        config = baseline_lsq_config(lq_size=2, sq_size=2)
        result = run(assemble(counted_loop_program), config)
        assert result.counters.get("dispatch_stalls_lq") > 0 or \
            result.counters.get("dispatch_stalls_sq") > 0


class TestForwardingBehaviour:
    def test_sfc_forwards_in_flight_values(self):
        result = run(assemble(counted_loop_program),
                     baseline_sfc_mdt_config())
        assert result.counters.get("sfc_forwards") > 0

    def test_lsq_forwards_in_flight_values(self):
        result = run(assemble(counted_loop_program), baseline_lsq_config())
        assert result.counters.get("lsq_full_forwards") > 0

    def test_subword_partial_match_resolves(self):
        """A byte store followed by a word load of the same word."""
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0xAB)
            a.sb("r2", "r1", 0)
            a.ld("r3", "r1", 0)
            a.halt()
        for config in (baseline_sfc_mdt_config(), baseline_lsq_config()):
            run(assemble(build), config)

    def test_sfc_partial_replay_counted(self):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0xAB)
            # Pad so the store completes before its retire while the
            # load is in flight.
            a.sb("r2", "r1", 0)
            a.mul("r4", "r2", "r2")
            a.mul("r4", "r4", "r4")
            a.ld("r3", "r1", 0)
            a.halt()
        result = run(assemble(build), baseline_sfc_mdt_config())
        assert result.counters.get("load_replays_sfc_partial") >= 1


class TestEnforcementModes:
    def test_not_enf_ignores_output_violations(self):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0)
            a.li("r3", 60)
            a.li("r7", 3)
            a.label("loop")
            a.mul("r4", "r2", "r7")      # slow data
            a.sd("r4", "r1", 0)          # slow store
            a.sd("r2", "r1", 0)          # fast store, same address
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        prog = assemble(build)
        enf = run(prog, baseline_sfc_mdt_config())
        not_enf = run(prog, baseline_sfc_mdt_config(mode=NOT_ENF,
                                                    name="notenf"))
        assert not_enf.counters.get("violation_flushes_output") >= \
            enf.counters.get("violation_flushes_output")

    def test_aggressive_configs_run(self):
        prog = assemble(counted_loop_program)
        for config in (aggressive_lsq_config(),
                       aggressive_sfc_mdt_config()):
            result = run(prog, config)
            assert result.instructions > 0


class TestSimulationGuards:
    def test_max_cycles_guard(self):
        from repro.pipeline import SimulationError
        config = baseline_lsq_config()
        config.max_cycles = 3
        with pytest.raises(SimulationError):
            run(assemble(counted_loop_program), config)

    def test_validation_catches_wrong_trace(self):
        """Feeding the wrong golden trace must abort the simulation."""
        from repro.pipeline import SimulationError
        prog = assemble(store_load_program)
        other = Assembler()
        other.li("r1", 1)
        other.halt()
        wrong_trace = run_program(other.build())
        with pytest.raises(SimulationError):
            Processor(prog, baseline_lsq_config(),
                      trace=wrong_trace).run()

    def test_result_repr_and_rates(self):
        result = run(assemble(counted_loop_program), baseline_lsq_config())
        assert "IPC" in repr(result)
        assert 0 <= result.rate("l1d_misses", "l1d_accesses") <= 1
