#!/usr/bin/env python3
"""Scalability demo: SFC/MDT vs LSQ as the instruction window grows.

The paper's motivating claim is that the LSQ's associative search logic
does not scale with window size, while the address-indexed SFC and MDT
do.  Here we sweep the window (ROB + scheduler) from 32 to 1024 entries
on a memory-parallel workload and print the IPC of a size-matched LSQ
next to the (fixed-size) SFC/MDT.

Run:  python examples/window_scaling.py
"""

from repro.harness.figures import window_scaling


def main():
    print("Sweeping the instruction window on 'swim' "
          "(streaming FP stencil)...\n")
    figure = window_scaling(scale=8000, benchmark="swim")
    print(figure.format())
    print()
    print("The size-matched LSQ needs its queues (and their CAM search")
    print("width) to grow with the window; the SFC/MDT geometry stays")
    print("fixed and keeps pace -- the paper's scalability argument.")


if __name__ == "__main__":
    main()
