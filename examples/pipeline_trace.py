#!/usr/bin/env python3
"""Pipeline tracing: watch instructions flow through the machine.

Writes a kernel in plain assembly text, runs it on the SFC/MDT machine
with a pipeline tracer attached, and prints the per-instruction timeline
(Dispatch / Issue / Complete / Retire cycles plus replay and squash
events).  The late-store pattern makes the first iteration violate a true
dependence, so the trace shows the flush, the refetch, and the
producer-set predictor serialising subsequent iterations.

Run:  python examples/pipeline_trace.py
"""

from repro import Processor
from repro.harness import baseline_sfc_mdt_config
from repro.isa import parse_asm
from repro.pipeline import trace_run

KERNEL = """
    li   r1, 0x1000
    li   r2, 0
    li   r3, 8
    li   r7, 3
loop:
    mul  r4, r2, r7        # slow chain feeding the store...
    mul  r4, r4, r7
    sd   r4, 0(r1)         # ...so this store completes late
    ld   r5, 0(r1)         # younger load: violates, then is predicted
    add  r6, r6, r5
    addi r2, r2, 1
    bne  r2, r3, loop
    halt
"""


def main():
    program = parse_asm(KERNEL, name="trace-demo")
    processor = Processor(program, baseline_sfc_mdt_config())
    tracer = trace_run(processor)

    print("Per-instruction pipeline timeline "
          "(D=dispatch I=first issue C=complete R=retire):\n")
    print(tracer.format(count=40))

    squashed = tracer.squashed()
    print(f"\n{len(tracer.retired())} retired, {len(squashed)} squashed "
          f"(ordering-violation recovery + wrong-path cleanup)")

    loads = [t for t in tracer.retired() if t.text.startswith("ld")]
    if loads:
        first, last = loads[0], loads[-1]
        print(f"first load latency {first.retire_cycle - first.dispatch_cycle} "
              f"cycles; steady-state load latency "
              f"{last.retire_cycle - last.dispatch_cycle} cycles "
              f"(the predictor has serialised it behind its store)")


if __name__ == "__main__":
    main()
