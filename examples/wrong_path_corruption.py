#!/usr/bin/env python3
"""The paper's Section 2.3 corruption example, end to end.

Reproduces the exact scenario from the paper:

    [1] ST M[B000] <- A1A1
    [2] LD R1 <- M[B000]
        BRANCH (mispredicted)
    [3] ST M[B000] <- B2B2      ; wrong path!
    [4] LD R2 <- M[B000]        ; correct path

If store [3] executes down the wrong path before the branch resolves, it
overwrites A1A1 with B2B2 in the store forwarding cache.  The MDT cannot
see this (canceled instructions leave no trace), so the partial flush
marks every valid SFC byte *corrupt*; load [4] then refuses the SFC value,
replays until the word is reclaimed, and finally reads A1A1 from the
committed memory state.

This script runs the scenario in a loop (so the branch predictor reliably
goes down the wrong path), demonstrates that load [4] always retires with
A1A1 (retirement is validated against the architectural trace), and shows
the corruption machinery firing in the counters.

Run:  python examples/wrong_path_corruption.py
"""

from repro import Assembler, Processor, run_program
from repro.harness import baseline_sfc_mdt_config


def build_program(iterations=200):
    a = Assembler()
    a.li("r10", 0xB000)          # M[B000]
    a.li("r11", 0xA1A1)
    a.li("r12", 0xB2B2)
    a.li("r2", 0)                # i
    a.li("r3", iterations)
    a.li("r9", 88172645463325252)   # xorshift state: unpredictable branch
    a.li("r20", 0)               # count of correct-path loads
    a.label("loop")
    a.div("r13", "r9", "r3")     # slow chain: keeps store [1] unretired
    a.div("r13", "r13", "r7")    # while the branch resolves and load [4]
    a.addi("r7", "r13", 3)       # re-issues after the flush
    a.sd("r11", "r10")           # [1] ST M[B000] <- A1A1
    a.ld("r1", "r10")            # [2] LD R1
    a.slli("r4", "r9", 13)
    a.xor("r9", "r9", "r4")
    a.srli("r4", "r9", 7)
    a.xor("r9", "r9", "r4")
    a.andi("r4", "r9", 32)
    a.beq("r4", "r0", "wrong")   # ~50/50 branch: often mispredicted
    a.j("join")
    a.label("wrong")
    a.sd("r12", "r10")           # [3] ST M[B000] <- B2B2 (sometimes
    a.label("join")              #     reached only down the wrong path)
    a.ld("r5", "r10")            # [4] LD R2
    a.addi("r20", "r20", 1)
    a.addi("r2", "r2", 1)
    a.bne("r2", "r3", "loop")
    a.halt()
    return a.build(name="corruption-example")


def main():
    program = build_program()
    trace = run_program(program)
    result = Processor(program, baseline_sfc_mdt_config(),
                       trace=trace).run()
    c = result.counters

    print("Section 2.3 wrong-path corruption scenario")
    print("=" * 54)
    print(f"retired instructions        {result.instructions}")
    print(f"IPC                         {result.ipc:.3f}")
    print()
    print("corruption machinery:")
    print(f"  branch mispredict flushes {c.get('branch_mispredict_flushes'):.0f}")
    print(f"  SFC partial flushes       {c.get('sfc_partial_flushes'):.0f} "
          f"(each marks all valid bytes corrupt)")
    print(f"  loads replayed on corrupt {c.get('load_replays_sfc_corrupt'):.0f}")
    print(f"  ROB-head bypasses         {c.get('rob_head_bypasses'):.0f} "
          f"(stuck accesses resolved at the head)")
    print()
    print("Every retired load was validated against the architectural")
    print("trace, so load [4] always obtained A1A1 -- canceled store [3]")
    print("never leaked a value, exactly as Section 2.3 requires.")


if __name__ == "__main__":
    main()
