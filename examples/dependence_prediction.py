#!/usr/bin/env python3
"""Producer-set dependence prediction in action (paper Section 2.1).

Runs a kernel whose stores complete late (multiply-fed data) so younger
loads to the same addresses initially violate true dependences.  With the
producer-set predictor learning from each violation, the violation stream
dries up after the first few occurrences -- and the enforcement mode
(ENF vs NOT-ENF) decides whether anti/output violations are also learned.

Run:  python examples/dependence_prediction.py
"""

from repro import Assembler, Processor, run_program
from repro.harness import baseline_sfc_mdt_config
from repro.harness.configs import ENF, NOT_ENF


def build_program(iterations=400):
    a = Assembler()
    a.li("r1", 0x1000)
    a.li("r2", 0)
    a.li("r3", iterations)
    a.li("r7", 3)
    a.label("loop")
    a.andi("r8", "r2", 0x78)     # 16 recurring slots
    a.add("r8", "r8", "r1")
    a.mul("r4", "r2", "r7")      # slow store data...
    a.mul("r4", "r4", "r7")
    a.sd("r4", "r8")             # ...so this store completes late
    a.sd("r2", "r8")             # younger same-address store (output dep)
    a.ld("r5", "r8")             # younger same-address load (true dep)
    a.add("r6", "r6", "r5")
    a.addi("r2", "r2", 1)
    a.bne("r2", "r3", "loop")
    a.halt()
    return a.build(name="dependence-demo")


def main():
    program = build_program()
    trace = run_program(program)
    print("Kernel: slow store -> fast store -> load, all to one of 16")
    print("recurring addresses; every memory dependence kind is at risk.\n")

    for mode in (ENF, NOT_ENF):
        config = baseline_sfc_mdt_config(mode=mode, name=mode)
        result = Processor(program, config, trace=trace).run()
        c = result.counters
        print(f"=== predictor mode {mode} ===")
        print(f"  IPC                  {result.ipc:.3f}")
        print(f"  true violations      "
              f"{c.get('violation_flushes_true'):.0f}")
        print(f"  anti violations      "
              f"{c.get('violation_flushes_anti'):.0f}")
        print(f"  output violations    "
              f"{c.get('violation_flushes_output'):.0f}")
        print(f"  predictor trainings  {c.get('pred_trainings'):.0f}")
        print(f"  enforced (consumed)  {c.get('pred_consumes'):.0f}")
        print()

    print("ENF learns anti and output dependences as well as true ones,")
    print("so its violation counts stay near the training minimum; the")
    print("NOT-ENF configuration keeps paying output-violation flushes --")
    print("Section 3's reason for enforcing all predicted dependences.")


if __name__ == "__main__":
    main()
