#!/usr/bin/env python3
"""Multicore litmus tests: probe the machine's memory model and check
every observed outcome against the operational-model oracle.

Runs the classic trio (message passing, store buffering, load
buffering) on a 2-core shared-memory system, prints what the machine
actually produced next to what the model allows, then demonstrates the
oracle catching a forbidden outcome (LB's causal cycle) and finishes
with an ordinary benchmark run N-up over private memories and a shared
L2.

Run:  python examples/multicore_litmus.py
"""

from repro.api import simulate_system
from repro.verify import LitmusOracle, run_litmus_suite
from repro.workloads import LITMUS_TESTS


def litmus_campaign():
    print("=== litmus campaign (2 cores, shared memory) ===\n")
    report = run_litmus_suite()
    print(report.format())
    print()


def forbidden_outcome_demo():
    print("=== the oracle can say no ===\n")
    lb = LITMUS_TESTS["lb"]
    oracle = LitmusOracle()
    # (1, 1) would mean each thread's load observed a store that is
    # program-order *after* the other thread's load -- a causal cycle.
    print(oracle.explain(lb, (1, 1)))
    print(oracle.explain(lb, (0, 1)))
    print()


def n_up_throughput():
    print("=== 2-up benchmark over a shared L2 (private memories) ===\n")
    record = simulate_system("gap", "baseline-sfc-mdt", cores=2,
                             scale=2000, jobs=1, use_cache=False)
    print(f"{record.benchmark} x{record.cores} on {record.config_name}: "
          f"aggregate IPC {record.ipc:.3f}")
    for core_id in range(record.cores):
        cycles = record.metric(f"core{core_id}_cycles")
        insts = record.metric(f"core{core_id}_retired_instructions")
        print(f"  core{core_id}: {int(insts)} insts, {int(cycles)} "
              f"cycles, IPC {insts / cycles:.3f}")
    print(f"  shared L2 miss rate: {record.metric('l2_miss_rate'):.3f}")


def main():
    litmus_campaign()
    forbidden_outcome_demo()
    n_up_throughput()


if __name__ == "__main__":
    main()
