#!/usr/bin/env python3
"""Run the full SPEC-styled suite on one configuration pair.

A miniature of the Figure 5 experiment: every benchmark kernel on the
baseline core, LSQ vs SFC/MDT, with the per-benchmark event profile that
explains each ratio.

Run:  python examples/spec_suite.py [scale]
"""

import sys

from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import ExperimentRunner
from repro.workloads import FIGURE5_BENCHMARKS, is_fp


def main():
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    runner = ExperimentRunner(scale=scale)
    lsq_config = baseline_lsq_config()
    sfc_config = baseline_sfc_mdt_config()

    print(f"{'benchmark':<11} {'class':<5} {'LSQ IPC':>8} {'SFC IPC':>8} "
          f"{'ratio':>6}  notable events")
    print("-" * 76)
    for name in FIGURE5_BENCHMARKS:
        lsq = runner.run(name, lsq_config)
        sfc = runner.run(name, sfc_config)
        c = sfc.counters
        events = []
        if c.get("store_replays_sfc_conflict"):
            events.append(
                f"sfc-conflicts={c.get('store_replays_sfc_conflict'):.0f}")
        if c.get("load_replays_mdt_conflict"):
            events.append(
                f"mdt-conflicts={c.get('load_replays_mdt_conflict'):.0f}")
        if c.get("load_replays_sfc_corrupt"):
            events.append(
                f"corrupt-replays={c.get('load_replays_sfc_corrupt'):.0f}")
        violations = (c.get("violation_flushes_true") +
                      c.get("violation_flushes_anti") +
                      c.get("violation_flushes_output"))
        if violations:
            events.append(f"violations={violations:.0f}")
        ratio = sfc.ipc / lsq.ipc if lsq.ipc else 0.0
        print(f"{name:<11} {'fp' if is_fp(name) else 'int':<5} "
              f"{lsq.ipc:>8.3f} {sfc.ipc:>8.3f} {ratio:>6.3f}  "
              f"{', '.join(events) or '-'}")


if __name__ == "__main__":
    main()
