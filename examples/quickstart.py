#!/usr/bin/env python3
"""Quickstart: assemble a program and run it on both memory subsystems.

Builds a small loop that stores and reloads an in-flight buffer, runs it
on the baseline 4-wide superscalar with (a) the idealized 48x32 LSQ and
(b) the paper's SFC + MDT + store FIFO, and prints the performance and
event counters that distinguish the two designs.

Run:  python examples/quickstart.py
"""

from repro import Assembler, Processor, run_program
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config


def build_program():
    a = Assembler()
    a.li("r1", 0x1000)          # buffer base
    a.li("r2", 0)               # i
    a.li("r3", 500)             # iterations
    a.li("r6", 0)               # checksum
    a.label("loop")
    a.andi("r4", "r2", 0xF8)    # slot address (32 words, reused)
    a.add("r4", "r4", "r1")
    a.mul("r5", "r2", "r2")     # some work feeding the store
    a.sd("r5", "r4")            # store ...
    a.ld("r7", "r4")            # ... and immediately reload (forwarding!)
    a.add("r6", "r6", "r7")
    a.addi("r2", "r2", 1)
    a.bne("r2", "r3", "loop")
    a.halt()
    return a.build(name="quickstart")


def main():
    program = build_program()
    trace = run_program(program)
    print(f"program: {len(program)} static instructions, "
          f"{len(trace)} dynamic instructions\n")

    for config in (baseline_lsq_config(), baseline_sfc_mdt_config()):
        result = Processor(program, config, trace=trace).run()
        c = result.counters
        print(f"=== {config.name} ===")
        print(f"  IPC                 {result.ipc:.3f}   "
              f"({result.cycles} cycles)")
        if config.subsystem == "lsq":
            print(f"  forwarded loads     "
                  f"{c.get('lsq_full_forwards'):.0f}")
            print(f"  SQ entries searched "
                  f"{c.get('lsq_sq_entries_searched'):.0f} "
                  f"(the CAM work the SFC eliminates)")
            print(f"  ordering violations "
                  f"{c.get('lsq_true_violations'):.0f}")
        else:
            print(f"  SFC forwards        {c.get('sfc_forwards'):.0f}")
            print(f"  MDT accesses        "
                  f"{c.get('mdt_load_accesses') + c.get('mdt_store_accesses'):.0f} "
                  f"(two sequence-number compares each)")
            print(f"  violation flushes   "
                  f"{c.get('violation_flushes_true'):.0f} true / "
                  f"{c.get('violation_flushes_anti'):.0f} anti / "
                  f"{c.get('violation_flushes_output'):.0f} output")
            print(f"  replays             {c.get('mem_replays'):.0f}")
        print()


if __name__ == "__main__":
    main()
